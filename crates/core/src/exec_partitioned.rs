//! Partitioned locality-aware neighborhood collective — the combination the
//! paper's §5 proposes: "large messages have been optimized separately with
//! both locality-aware methods and partitioned communication. The
//! combination of these optimizations, partitioning locality-aware
//! messages, can have an even large impact".
//!
//! Here each inter-region (`g`) message is a *partitioned* send whose
//! partitions are the contributions of the individual staging ranks. As
//! each intra-region `s` message arrives at the sending leader, that
//! partition is marked ready and injected immediately
//! (`MPI_Pready`-style), overlapping the intra-region redistribution with
//! inter-region injection instead of serializing `s` before `g`.

use crate::agg::{Plan, PlanMsg, Slot};
use crate::pattern::CommPattern;
use mpisim::persistent::shared_buf;
use mpisim::{Comm, PrecvReq, PsendReq, RankCtx, RecvReq, SendReq, SharedBuf};
use std::collections::HashMap;

/// One g message's slots reordered origin-major, with partition bounds.
struct GLayout {
    /// Slots sorted by (origin, index, first final dst).
    slots: Vec<Slot>,
    /// Origins in ascending order, one partition each.
    origins: Vec<usize>,
    /// Prefix offsets per partition (len = origins.len() + 1).
    bounds: Vec<usize>,
}

fn g_layout(m: &PlanMsg) -> GLayout {
    let mut slots = m.slots.clone();
    slots.sort_by_key(|s| (s.origin, s.index, s.final_dsts[0]));
    let mut origins = Vec::new();
    let mut bounds = vec![0usize];
    for (i, s) in slots.iter().enumerate() {
        if origins.last() != Some(&s.origin) {
            if !origins.is_empty() {
                bounds.push(i);
            }
            origins.push(s.origin);
        }
    }
    bounds.push(slots.len());
    GLayout { slots, origins, bounds }
}

struct PlainSend {
    req: SendReq<f64>,
    buf: SharedBuf<f64>,
    /// input positions feeding each slot
    sources: Vec<usize>,
}

struct PlainRecv {
    req: RecvReq<f64>,
    buf: SharedBuf<f64>,
    outputs: Vec<(usize, usize)>,
}

struct GSend {
    req: PsendReq<f64>,
    buf: SharedBuf<f64>,
    /// partition holding this leader's own values, with input positions
    own: Option<(usize, Vec<usize>)>,
}

struct GRecv {
    req: PrecvReq<f64>,
    buf: SharedBuf<f64>,
    outputs: Vec<(usize, usize)>,
}

/// An r-step send: request, buffer, and per-slot (g msg, slot pos) sources.
type RSend = (SendReq<f64>, SharedBuf<f64>, Vec<(usize, usize)>);

struct SRecv {
    req: RecvReq<f64>,
    buf: SharedBuf<f64>,
    /// which g send and partition this staging message fills
    g_msg: usize,
    partition: usize,
}

/// The partitioned persistent neighborhood collective of one rank.
pub struct PartitionedNeighbor {
    input_index: Vec<usize>,
    output_index: Vec<usize>,
    local_sends: Vec<PlainSend>,
    local_recvs: Vec<PlainRecv>,
    s_sends: Vec<PlainSend>,
    s_recvs: Vec<SRecv>,
    g_sends: Vec<GSend>,
    g_recvs: Vec<GRecv>,
    r_sends: Vec<RSend>,
    r_recvs: Vec<PlainRecv>,
}

const STEP_TAG_STRIDE: u64 = 4096;

impl PartitionedNeighbor {
    /// Initialize from an **aggregated** plan (three-step, with or without
    /// dedup). All routing is fixed here; iterations only move values.
    pub fn init(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        assert!(plan.aggregated, "partitioned execution applies to aggregated plans");
        let me = comm.rank();
        let input_index = pattern.src_indices(me);
        let output_index = pattern.dst_indices(me);
        let in_pos: HashMap<usize, usize> =
            input_index.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        let out_pos: HashMap<usize, usize> =
            output_index.iter().enumerate().map(|(p, &i)| (i, p)).collect();

        // ℓ step: identical to the plain executor.
        let mut local_sends = Vec::new();
        let mut local_recvs = Vec::new();
        let mut seq: HashMap<(usize, usize), u64> = HashMap::new();
        for m in &plan.local {
            let s = seq.entry((m.src, m.dst)).or_insert(0);
            let tag = tag_base + *s;
            *s += 1;
            if m.src == me {
                let buf = shared_buf(vec![0.0; m.slots.len()]);
                let sources = m.slots.iter().map(|sl| in_pos[&sl.index]).collect();
                let req = ctx.send_init(comm, m.dst, tag, buf.clone(), 0, m.slots.len());
                local_sends.push(PlainSend { req, buf, sources });
            }
            if m.dst == me {
                let buf = shared_buf(vec![0.0; m.slots.len()]);
                let req = ctx.recv_init(comm, m.src, tag, buf.clone(), 0, m.slots.len());
                let outputs =
                    m.slots.iter().enumerate().map(|(p, sl)| (p, out_pos[&sl.index])).collect();
                local_recvs.push(PlainRecv { req, buf, outputs });
            }
        }

        // g step with origin-major layouts and partitioned requests.
        // Also build lookup: (leader, origin) per pair → (g msg idx, part).
        let mut g_sends = Vec::new();
        let mut g_recvs = Vec::new();
        // key: (g src leader, g dst leader, origin) — unique per plan msg
        // because there is exactly one g message per region pair.
        let mut part_of: HashMap<(usize, usize, usize), (usize, usize)> = HashMap::new();
        // forwarding map for r: (index, final dst) → (g recv idx, slot pos)
        let mut fwd: HashMap<(usize, usize), (usize, usize)> = HashMap::new();

        for m in &plan.g_step {
            let layout = g_layout(m);
            let tag = tag_base + 2 * STEP_TAG_STRIDE;
            if m.src == me {
                let buf = shared_buf(vec![0.0; layout.slots.len()]);
                let req = ctx.psend_init_parts(
                    comm,
                    m.dst,
                    tag + g_sends.len() as u64,
                    buf.clone(),
                    layout.bounds.clone(),
                );
                let mut own = None;
                for (p, &origin) in layout.origins.iter().enumerate() {
                    if origin == me {
                        let positions = layout.slots[layout.bounds[p]..layout.bounds[p + 1]]
                            .iter()
                            .map(|sl| in_pos[&sl.index])
                            .collect();
                        own = Some((p, positions));
                    } else {
                        part_of.insert((m.src, m.dst, origin), (g_sends.len(), p));
                    }
                }
                g_sends.push(GSend { req, buf, own });
            }
            if m.dst == me {
                let buf = shared_buf(vec![0.0; layout.slots.len()]);
                // the receive tag must mirror the sender's: count how many
                // g sends the sender registered before this one
                let sender_prior = plan.g_step[..]
                    .iter()
                    .take_while(|x| !std::ptr::eq(*x, m))
                    .filter(|x| x.src == m.src)
                    .count();
                let req = ctx.precv_init_parts(
                    comm,
                    m.src,
                    tag + sender_prior as u64,
                    buf.clone(),
                    layout.bounds.clone(),
                );
                let mut outputs = Vec::new();
                for (pos, sl) in layout.slots.iter().enumerate() {
                    for &fd in &sl.final_dsts {
                        if fd == me {
                            outputs.push((pos, out_pos[&sl.index]));
                        } else {
                            fwd.insert((sl.index, fd), (g_recvs.len(), pos));
                        }
                    }
                }
                g_recvs.push(GRecv { req, buf, outputs });
            }
        }

        // s step: each message feeds exactly one g partition.
        let mut s_sends = Vec::new();
        let mut s_recvs = Vec::new();
        let mut s_seq: HashMap<(usize, usize), u64> = HashMap::new();
        // identify the pair leaders of each s message via the matching g
        // message: the s msg's dst is the sending leader; the origin is the
        // s msg's src; the dst leader comes from the slots' destinations.
        for m in &plan.s_step {
            let sq = s_seq.entry((m.src, m.dst)).or_insert(0);
            let tag = tag_base + STEP_TAG_STRIDE + *sq;
            *sq += 1;
            if m.src == me {
                // sort to the same per-origin order as the g partition
                let mut slots = m.slots.clone();
                slots.sort_by_key(|s| (s.index, s.final_dsts[0]));
                let buf = shared_buf(vec![0.0; slots.len()]);
                let sources = slots.iter().map(|sl| in_pos[&sl.index]).collect();
                let req = ctx.send_init(comm, m.dst, tag, buf.clone(), 0, slots.len());
                s_sends.push(PlainSend { req, buf, sources });
            }
            if m.dst == me {
                let buf = shared_buf(vec![0.0; m.slots.len()]);
                let req = ctx.recv_init(comm, m.src, tag, buf.clone(), 0, m.slots.len());
                // locate the g partition: the dst region's leader is the
                // g message for these slots' region pair
                let dst_leader = plan
                    .g_step
                    .iter()
                    .find(|g| {
                        g.src == me
                            && g.slots.iter().any(|gs| {
                                gs.origin == m.src
                                    && gs.index == m.slots[0].index
                                    && gs.final_dsts[0] == m.slots[0].final_dsts[0]
                            })
                    })
                    .map(|g| g.dst)
                    .expect("every s message matches a g message at its leader");
                let (g_msg, partition) = part_of[&(me, dst_leader, m.src)];
                s_recvs.push(SRecv { req, buf, g_msg, partition });
            }
        }

        // r step: forwards from g buffers.
        let mut r_sends = Vec::new();
        let mut r_recvs = Vec::new();
        let mut r_seq: HashMap<(usize, usize), u64> = HashMap::new();
        for m in &plan.r_step {
            let sq = r_seq.entry((m.src, m.dst)).or_insert(0);
            let tag = tag_base + 3 * STEP_TAG_STRIDE + *sq;
            *sq += 1;
            if m.src == me {
                let buf = shared_buf(vec![0.0; m.slots.len()]);
                let sources: Vec<(usize, usize)> =
                    m.slots.iter().map(|sl| fwd[&(sl.index, m.dst)]).collect();
                let req = ctx.send_init(comm, m.dst, tag, buf.clone(), 0, m.slots.len());
                r_sends.push((req, buf, sources));
            }
            if m.dst == me {
                let buf = shared_buf(vec![0.0; m.slots.len()]);
                let req = ctx.recv_init(comm, m.src, tag, buf.clone(), 0, m.slots.len());
                let outputs =
                    m.slots.iter().enumerate().map(|(p, sl)| (p, out_pos[&sl.index])).collect();
                r_recvs.push(PlainRecv { req, buf, outputs });
            }
        }

        Self {
            input_index,
            output_index,
            local_sends,
            local_recvs,
            s_sends,
            s_recvs,
            g_sends,
            g_recvs,
            r_sends,
            r_recvs,
        }
    }

    pub fn input_index(&self) -> &[usize] {
        &self.input_index
    }

    pub fn output_index(&self) -> &[usize] {
        &self.output_index
    }

    /// Start one iteration: ℓ and s go out; each g partition is injected
    /// the moment its staging data is available.
    pub fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        assert_eq!(input.len(), self.input_index.len(), "input length mismatch");

        for send in &mut self.local_sends {
            {
                let mut g = send.buf.write();
                for (slot, &p) in g.iter_mut().zip(&send.sources) {
                    *slot = input[p];
                }
            }
            send.req.start(ctx);
        }
        for recv in &mut self.local_recvs {
            recv.req.start();
        }

        for send in &mut self.s_sends {
            {
                let mut g = send.buf.write();
                for (slot, &p) in g.iter_mut().zip(&send.sources) {
                    *slot = input[p];
                }
            }
            send.req.start(ctx);
        }

        // open the partitioned g requests and inject the leader's own data
        for gs in &mut self.g_sends {
            gs.req.start();
            if let Some((part, positions)) = &gs.own {
                let range = gs.req.partition_range(*part);
                {
                    let mut g = gs.buf.write();
                    for (i, &p) in range.clone().zip(positions.iter()) {
                        g[i] = input[p];
                    }
                }
                gs.req.pready(ctx, *part);
            }
        }
        for gr in &mut self.g_recvs {
            gr.req.start();
        }

        // as staged data arrives, inject the corresponding partition —
        // this is the overlap the §5 combination buys: no partition waits
        // for staging messages it does not depend on
        for sr in &mut self.s_recvs {
            sr.req.start();
        }
        for sr in &mut self.s_recvs {
            sr.req.wait(ctx);
            let gs = &mut self.g_sends[sr.g_msg];
            let range = gs.req.partition_range(sr.partition);
            // the s message's slots arrive in the same (index, fd) order
            // as the partition's slots
            {
                let src = sr.buf.read();
                assert_eq!(src.len(), range.len(), "staging/partition length mismatch");
                let mut dst = gs.buf.write();
                dst[range].clone_from_slice(&src);
            }
            gs.req.pready(ctx, sr.partition);
        }
        for gs in &self.g_sends {
            gs.req.wait();
        }
    }

    /// Complete the iteration: drain ℓ and g, then run the final
    /// redistribution.
    pub fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        assert_eq!(output.len(), self.output_index.len(), "output length mismatch");

        for recv in &mut self.local_recvs {
            recv.req.wait(ctx);
            let g = recv.buf.read();
            for &(pos, out) in &recv.outputs {
                output[out] = g[pos];
            }
        }

        for gr in &mut self.g_recvs {
            gr.req.wait(ctx);
            let g = gr.buf.read();
            for &(pos, out) in &gr.outputs {
                output[out] = g[pos];
            }
        }

        for (req, buf, sources) in &mut self.r_sends {
            {
                let mut g = buf.write();
                for (slot, &(g_msg, pos)) in g.iter_mut().zip(sources.iter()) {
                    *slot = self.g_recvs[g_msg].buf.read()[pos];
                }
            }
            req.start(ctx);
        }
        for recv in &mut self.r_recvs {
            recv.req.start();
            recv.req.wait(ctx);
            let g = recv.buf.read();
            for &(pos, out) in &recv.outputs {
                output[out] = g[pos];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use locality::Topology;
    use mpisim::World;

    fn roundtrip(pattern: &CommPattern, topo: &Topology, dedup: bool) {
        let n = pattern.n_ranks;
        let protocol = if dedup { Protocol::FullNeighbor } else { Protocol::PartialNeighbor };
        let plan = protocol.plan(pattern, topo);
        let results = World::run(n, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PartitionedNeighbor::init(pattern, &plan, ctx, &comm, 50);
            let mut got = Vec::new();
            for it in 0..3u64 {
                let input: Vec<f64> = nb
                    .input_index()
                    .iter()
                    .map(|&i| (10 * i + it as usize) as f64)
                    .collect();
                let mut output = vec![f64::NAN; nb.output_index().len()];
                nb.start(ctx, &input);
                nb.wait(ctx, &mut output);
                got.push(output);
            }
            got
        });
        for (rank, iters) in results.iter().enumerate() {
            let idx = pattern.dst_indices(rank);
            for (it, vals) in iters.iter().enumerate() {
                for (&i, &v) in idx.iter().zip(vals) {
                    assert_eq!(v, (10 * i + it) as f64, "rank {rank} iter {it} index {i}");
                }
            }
        }
    }

    #[test]
    fn partitioned_delivers_example_2_1() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        roundtrip(&pattern, &topo, false);
        roundtrip(&pattern, &topo, true);
    }

    #[test]
    fn partitioned_delivers_dense_pattern() {
        let topo = Topology::block_nodes(16, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        roundtrip(&pattern, &topo, false);
        roundtrip(&pattern, &topo, true);
    }

    #[test]
    fn partitioned_delivers_amg_level() {
        use sparse::gen::diffusion::paper_problem;
        use sparse::{build_comm_pkgs, Partition};
        let a = paper_problem(32, 16);
        let part = Partition::block(a.n_rows(), 12);
        let pattern = CommPattern::from_comm_pkgs(&build_comm_pkgs(&a, &part));
        let topo = Topology::block_nodes(12, 4);
        roundtrip(&pattern, &topo, true);
    }

    #[test]
    fn g_layout_origin_major() {
        let m = PlanMsg {
            src: 0,
            dst: 4,
            slots: vec![
                Slot { index: 9, origin: 2, final_dsts: vec![4] },
                Slot { index: 1, origin: 0, final_dsts: vec![5] },
                Slot { index: 5, origin: 2, final_dsts: vec![6] },
                Slot { index: 3, origin: 1, final_dsts: vec![4] },
            ],
        };
        let l = g_layout(&m);
        assert_eq!(l.origins, vec![0, 1, 2]);
        assert_eq!(l.bounds, vec![0, 1, 2, 4]);
        assert_eq!(l.slots[2].index, 5); // origin 2 sorted by index
        assert_eq!(l.slots[3].index, 9);
    }
}
