//! The locality-aware aggregation planner (paper §3.2–3.3).
//!
//! A [`Plan`] describes one persistent neighborhood collective as four step
//! message lists (paper Algorithm 4):
//!
//! * `ℓ` (`local`) — fully local messages: source and destination share a
//!   region; sent directly.
//! * `s` (`s_step`) — initial intra-region redistribution: each rank ships
//!   the data bound for remote region *B* to the region's sending leader
//!   for *B*.
//! * `g` (`g_step`) — inter-region communication: exactly one message per
//!   (source region, destination region) pair with traffic.
//! * `r` (`r_step`) — final intra-region redistribution from the receiving
//!   leader to the final destinations.
//!
//! [`Plan::standard`] puts every pattern message directly in `ℓ`/`g` with
//! empty `s`/`r` — the §3.1 standard implementation — so all protocols
//! share one statistics/execution/cost machinery.
//!
//! With `dedup = true` (the §3.3 API extension) a value crosses a region
//! pair **once** regardless of how many final destinations need it; the
//! receiving leader expands it locally.
//!
//! ## Storage layout
//!
//! Slots live in one CSR-style arena per step ([`SlotArena`]): SoA columns
//! for the per-slot value index and origin rank, plus a single shared
//! final-destination pool with prefix offsets. A [`PlanMsg`] is a header —
//! `(src, dst)` plus a contiguous slot range into its step's arena — so
//! building a plan performs O(1) *vector* allocations per step (amortized
//! growth of the arena columns) instead of one `Vec` per slot, and the
//! grouping work in [`Plan::aggregated`] is a handful of flat sorts rather
//! than `BTreeMap` insertions per slot.

pub mod assign;
pub mod verify;

pub use assign::{AssignStrategy, LeaderAssignment};

use crate::pattern::CommPattern;
use locality::Topology;
use std::ops::Range;

/// One inter-region demand, sorted by (src region, dst region, value
/// index, final destination); the origin tags along (each index has a
/// unique origin, so it never participates in the ordering).
type Demand = (usize, usize, usize, usize, usize);

/// CSR-style slot storage of one plan step.
///
/// Column `i` of a step's arena holds slot `i`'s global value index and
/// origin rank; its final destinations are `fds[fd_off[i]..fd_off[i+1]]`.
/// Exactly one destination for `ℓ`/`r` slots and for non-dedup `g` slots;
/// possibly several for dedup `g` (and their staged `s` copies), where the
/// receiving leader fans the value out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotArena {
    index: Vec<usize>,
    origin: Vec<usize>,
    fds: Vec<usize>,
    fd_off: Vec<usize>,
}

/// A borrowed view of one slot in a [`SlotArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRef<'a> {
    /// Global index of the value (the §3.3 extension's `send_idx`).
    pub index: usize,
    /// Rank owning the value.
    pub origin: usize,
    /// Final destination ranks served by this slot, ascending.
    pub final_dsts: &'a [usize],
}

impl Default for SlotArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotArena {
    pub fn new() -> Self {
        Self {
            index: Vec::new(),
            origin: Vec::new(),
            fds: Vec::new(),
            fd_off: vec![0],
        }
    }

    /// Number of slots stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Append one slot; returns its position.
    pub fn push(
        &mut self,
        index: usize,
        origin: usize,
        fds: impl IntoIterator<Item = usize>,
    ) -> usize {
        self.index.push(index);
        self.origin.push(origin);
        self.fds.extend(fds);
        debug_assert!(
            self.fds.len() > *self.fd_off.last().expect("offsets start at [0]"),
            "slot needs at least one final destination"
        );
        self.fd_off.push(self.fds.len());
        self.index.len() - 1
    }

    /// Value index of slot `i`.
    pub fn index(&self, i: usize) -> usize {
        self.index[i]
    }

    /// Origin rank of slot `i`.
    pub fn origin(&self, i: usize) -> usize {
        self.origin[i]
    }

    /// Final destinations of slot `i`.
    pub fn final_dsts(&self, i: usize) -> &[usize] {
        &self.fds[self.fd_off[i]..self.fd_off[i + 1]]
    }

    /// Full view of slot `i`.
    pub fn get(&self, i: usize) -> SlotRef<'_> {
        SlotRef {
            index: self.index[i],
            origin: self.origin[i],
            final_dsts: self.final_dsts(i),
        }
    }

    /// Iterate the slots of `range` (a message's slots).
    pub fn iter_range(&self, range: Range<usize>) -> impl Iterator<Item = SlotRef<'_>> {
        range.map(move |i| self.get(i))
    }
}

/// One planned message: endpoints plus its contiguous slot range within
/// the owning step's [`SlotArena`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanMsg {
    pub src: usize,
    pub dst: usize,
    pub slots: Range<usize>,
}

impl PlanMsg {
    /// Number of values in the payload (message size in values; bytes are
    /// `8×` this for `f64` data).
    pub fn n_values(&self) -> usize {
        self.slots.len()
    }
}

/// A complete communication plan for one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    pub n_ranks: usize,
    /// True when built by [`Plan::aggregated`].
    pub aggregated: bool,
    /// True when duplicate values are removed from inter-region messages.
    pub dedup: bool,
    pub local: Vec<PlanMsg>,
    pub s_step: Vec<PlanMsg>,
    pub g_step: Vec<PlanMsg>,
    pub r_step: Vec<PlanMsg>,
    /// Slot arenas backing the message headers above, one per step.
    pub local_slots: SlotArena,
    pub s_slots: SlotArena,
    pub g_slots: SlotArena,
    pub r_slots: SlotArena,
}

impl Plan {
    /// The §3.1 standard implementation: every pattern message goes
    /// directly to its destination. Same-region messages land in `local`,
    /// the rest in `g_step`; `s`/`r` stay empty.
    pub fn standard(pattern: &CommPattern, topo: &Topology) -> Self {
        assert_eq!(pattern.n_ranks, topo.n_ranks());
        let mut local = Vec::new();
        let mut g_step = Vec::new();
        let mut local_slots = SlotArena::new();
        let mut g_slots = SlotArena::new();
        for (src, list) in pattern.sends.iter().enumerate() {
            for (dst, indices) in list {
                let (arena, msgs) = if topo.same_region(src, *dst) {
                    (&mut local_slots, &mut local)
                } else {
                    (&mut g_slots, &mut g_step)
                };
                let start = arena.len();
                for &i in indices {
                    arena.push(i, src, [*dst]);
                }
                msgs.push(PlanMsg {
                    src,
                    dst: *dst,
                    slots: start..arena.len(),
                });
            }
        }
        Self {
            n_ranks: pattern.n_ranks,
            aggregated: false,
            dedup: false,
            local,
            s_step: Vec::new(),
            g_step,
            r_step: Vec::new(),
            local_slots,
            s_slots: SlotArena::new(),
            g_slots,
            r_slots: SlotArena::new(),
        }
    }

    /// Three-step locality-aware aggregation (§3.2), optionally with
    /// duplicate removal (§3.3). All grouping is sort-based over flat
    /// vectors: one demand sort per plan, then linear walks over the runs.
    pub fn aggregated(
        pattern: &CommPattern,
        topo: &Topology,
        dedup: bool,
        strategy: AssignStrategy,
    ) -> Self {
        assert_eq!(pattern.n_ranks, topo.n_ranks());
        let mut local = Vec::new();
        let mut local_slots = SlotArena::new();

        // Flat inter-region demand list; everything below works on runs of
        // this one sorted vector.
        let mut demands: Vec<Demand> = Vec::new();
        for (src, list) in pattern.sends.iter().enumerate() {
            for (dst, indices) in list {
                if topo.same_region(src, *dst) {
                    let start = local_slots.len();
                    for &i in indices {
                        local_slots.push(i, src, [*dst]);
                    }
                    local.push(PlanMsg {
                        src,
                        dst: *dst,
                        slots: start..local_slots.len(),
                    });
                } else {
                    let pair = (topo.region_of(src), topo.region_of(*dst));
                    demands.extend(indices.iter().map(|&i| (pair.0, pair.1, i, *dst, src)));
                }
            }
        }
        // (pair, index, fd) is unique, so the unstable sort is deterministic
        // and yields exactly the slot order the routing layer expects.
        demands.sort_unstable();

        // Inter-region volumes (in values) drive load balancing; one pass
        // over the sorted runs.
        let mut volumes: Vec<((usize, usize), usize)> = Vec::new();
        let mut d = 0;
        while d < demands.len() {
            let pair = (demands[d].0, demands[d].1);
            let end = demands[d..]
                .iter()
                .position(|x| (x.0, x.1) != pair)
                .map_or(demands.len(), |p| d + p);
            let v = if dedup {
                // demands are index-sorted within the pair: count runs
                let mut count = 0;
                let mut last = usize::MAX;
                for x in &demands[d..end] {
                    if x.2 != last {
                        count += 1;
                        last = x.2;
                    }
                }
                count
            } else {
                end - d
            };
            volumes.push((pair, v));
            d = end;
        }
        let leaders = assign::assign_leaders(&volumes, topo, strategy);

        let mut s_step = Vec::new();
        let mut g_step = Vec::new();
        let mut r_step = Vec::new();
        let mut s_slots = SlotArena::new();
        let mut g_slots = SlotArena::new();
        let mut r_slots = SlotArena::new();
        // reused per-pair scratch for the s/r grouping sorts and the dedup
        // fan-out lists
        let mut by_origin: Vec<(usize, usize)> = Vec::new();
        let mut by_fd: Vec<(usize, usize)> = Vec::new();
        let mut fds: Vec<usize> = Vec::new();

        let mut d = 0;
        while d < demands.len() {
            let pair = (demands[d].0, demands[d].1);
            let end = demands[d..]
                .iter()
                .position(|x| (x.0, x.1) != pair)
                .map_or(demands.len(), |p| d + p);
            let (lead_send, lead_recv) = leaders.get(pair);

            // g slots for this pair, sorted by (index, fd) by construction.
            let g_start = g_slots.len();
            if dedup {
                // one slot per unique value index, fanning out to all its
                // final destinations in the pair's destination region
                let mut k = d;
                while k < end {
                    let index = demands[k].2;
                    let run = demands[k..end]
                        .iter()
                        .position(|x| x.2 != index)
                        .map_or(end, |p| k + p);
                    let origin = demands[k].4;
                    debug_assert!(
                        demands[k..run].iter().all(|x| x.4 == origin),
                        "one owner per value index"
                    );
                    // fds ascend within the index run (the demand sort);
                    // dedup defends against repeated (index, fd) demands
                    // from a pattern that bypassed `CommPattern::new`
                    fds.clear();
                    fds.extend(demands[k..run].iter().map(|x| x.3));
                    fds.dedup();
                    g_slots.push(index, origin, fds.iter().copied());
                    k = run;
                }
            } else {
                for &(_, _, index, fd, origin) in &demands[d..end] {
                    g_slots.push(index, origin, [fd]);
                }
            }
            let g_range = g_start..g_slots.len();

            // s step: origins that are not the sending leader forward their
            // slots to it (one message per origin per region pair). Group
            // by a flat sort on (origin, slot position) — slots of one
            // origin keep their (index, fd) order.
            by_origin.clear();
            by_origin.extend(
                g_range
                    .clone()
                    .filter(|&p| g_slots.origin(p) != lead_send)
                    .map(|p| (g_slots.origin(p), p)),
            );
            by_origin.sort_unstable();
            let mut k = 0;
            while k < by_origin.len() {
                let origin = by_origin[k].0;
                let run = by_origin[k..]
                    .iter()
                    .position(|x| x.0 != origin)
                    .map_or(by_origin.len(), |p| k + p);
                let start = s_slots.len();
                for &(_, p) in &by_origin[k..run] {
                    s_slots.push(
                        g_slots.index(p),
                        origin,
                        g_slots.final_dsts(p).iter().copied(),
                    );
                }
                s_step.push(PlanMsg {
                    src: origin,
                    dst: lead_send,
                    slots: start..s_slots.len(),
                });
                k = run;
            }

            // r step: the receiving leader forwards each delivered value to
            // every final destination other than itself (one message per
            // destination per region pair). Same flat-sort grouping.
            by_fd.clear();
            for p in g_range.clone() {
                by_fd.extend(
                    g_slots
                        .final_dsts(p)
                        .iter()
                        .filter(|&&fd| fd != lead_recv)
                        .map(|&fd| (fd, p)),
                );
            }
            by_fd.sort_unstable();
            let mut k = 0;
            while k < by_fd.len() {
                let fd = by_fd[k].0;
                let run = by_fd[k..]
                    .iter()
                    .position(|x| x.0 != fd)
                    .map_or(by_fd.len(), |p| k + p);
                let start = r_slots.len();
                for &(_, p) in &by_fd[k..run] {
                    r_slots.push(g_slots.index(p), g_slots.origin(p), [fd]);
                }
                r_step.push(PlanMsg {
                    src: lead_recv,
                    dst: fd,
                    slots: start..r_slots.len(),
                });
                k = run;
            }

            g_step.push(PlanMsg {
                src: lead_send,
                dst: lead_recv,
                slots: g_range,
            });
            d = end;
        }

        // Header lists must be (src, dst)-sorted for tag derivation; the
        // sorts are stable, so same-pair messages keep region-pair order.
        // `local` is already sorted (the pattern iterates src then dst).
        debug_assert!(local
            .windows(2)
            .all(|w| (w[0].src, w[0].dst) <= (w[1].src, w[1].dst)));
        s_step.sort_by_key(|m| (m.src, m.dst));
        g_step.sort_by_key(|m| (m.src, m.dst));
        r_step.sort_by_key(|m| (m.src, m.dst));

        Self {
            n_ranks: pattern.n_ranks,
            aggregated: true,
            dedup,
            local,
            s_step,
            g_step,
            r_step,
            local_slots,
            s_slots,
            g_slots,
            r_slots,
        }
    }

    /// All four step lists with their names, in execution order.
    pub fn steps(&self) -> [(&'static str, &[PlanMsg]); 4] {
        [
            ("local", self.local.as_slice()),
            ("s", self.s_step.as_slice()),
            ("g", self.g_step.as_slice()),
            ("r", self.r_step.as_slice()),
        ]
    }

    /// Total inter-region values moved per iteration.
    pub fn global_values(&self) -> usize {
        self.g_step.iter().map(PlanMsg::n_values).sum()
    }

    /// Total inter-region messages per iteration.
    pub fn global_msgs(&self) -> usize {
        self.g_step.len()
    }

    /// Total intra-region messages per iteration (ℓ + s + r).
    pub fn local_msgs(&self) -> usize {
        self.local.len() + self.s_step.len() + self.r_step.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::verify::verify_plan;
    use crate::pattern::CommPattern;

    fn example() -> (CommPattern, Topology) {
        (CommPattern::example_2_1(), Topology::block_nodes(8, 4))
    }

    #[test]
    fn arena_stores_soa_slots() {
        let mut a = SlotArena::new();
        a.push(7, 1, [4]);
        a.push(9, 2, [4, 5, 6]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(0).index, 7);
        assert_eq!(a.get(0).final_dsts, &[4][..]);
        assert_eq!(a.get(1).origin, 2);
        assert_eq!(a.final_dsts(1), &[4, 5, 6][..]);
        let all: Vec<usize> = a.iter_range(0..2).map(|s| s.index).collect();
        assert_eq!(all, vec![7, 9]);
    }

    #[test]
    fn standard_matches_figure_3() {
        let (pattern, topo) = example();
        let plan = Plan::standard(&pattern, &topo);
        // Figure 3: 15 inter-region messages, no local ones in the example
        assert_eq!(plan.global_msgs(), 15);
        assert!(plan.local.is_empty());
        assert_eq!(plan.global_values(), 17);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn partial_aggregation_matches_figure_4() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        // One region pair with traffic ⇒ exactly one inter-region message.
        assert_eq!(plan.global_msgs(), 1);
        // Duplicates still cross: 17 value slots.
        assert_eq!(plan.global_values(), 17);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn full_aggregation_matches_figure_5() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert_eq!(plan.global_msgs(), 1);
        // Each of the 8 values crosses the region pair exactly once.
        assert_eq!(plan.global_values(), 8);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn s_step_skips_the_leader_itself() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let leader = plan.g_step[0].src;
        assert!(plan
            .s_step
            .iter()
            .all(|m| m.src != leader && m.dst == leader));
        // three non-leader origins send s messages
        assert_eq!(plan.s_step.len(), 3);
    }

    #[test]
    fn r_step_covers_non_leader_destinations() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        let recv_leader = plan.g_step[0].dst;
        assert!(plan
            .r_step
            .iter()
            .all(|m| m.src == recv_leader && m.dst != recv_leader));
        // all four region-1 processes need data; leader keeps its own
        assert_eq!(plan.r_step.len(), 3);
    }

    #[test]
    fn dedup_never_increases_global_volume() {
        let (pattern, topo) = example();
        let partial = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let full = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert!(full.global_values() <= partial.global_values());
        // and the s step shrinks identically
        let s_partial: usize = partial.s_step.iter().map(PlanMsg::n_values).sum();
        let s_full: usize = full.s_step.iter().map(PlanMsg::n_values).sum();
        assert!(s_full <= s_partial);
    }

    #[test]
    fn dedup_g_slots_fan_out_sorted() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        for m in &plan.g_step {
            for s in plan.g_slots.iter_range(m.slots.clone()) {
                assert!(!s.final_dsts.is_empty());
                assert!(s.final_dsts.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn single_region_pattern_is_all_local() {
        let pattern = CommPattern::new(
            4,
            vec![
                vec![(1, vec![0]), (2, vec![1])],
                vec![(3, vec![2])],
                vec![],
                vec![(0, vec![3])],
            ],
        );
        let topo = Topology::block_nodes(4, 4); // one region
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert_eq!(plan.global_msgs(), 0);
        assert!(plan.s_step.is_empty() && plan.r_step.is_empty());
        assert_eq!(plan.local.len(), 4);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn empty_pattern_empty_plan() {
        let pattern = CommPattern::empty(8);
        let topo = Topology::block_nodes(8, 4);
        for plan in [
            Plan::standard(&pattern, &topo),
            Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced),
        ] {
            assert_eq!(plan.global_msgs() + plan.local_msgs(), 0);
            verify_plan(&pattern, &plan, &topo);
        }
    }
}
