//! The locality-aware aggregation planner (paper §3.2–3.3).
//!
//! A [`Plan`] describes one persistent neighborhood collective as four step
//! message lists (paper Algorithm 4):
//!
//! * `ℓ` (`local`) — fully local messages: source and destination share a
//!   region; sent directly.
//! * `s` (`s_step`) — initial intra-region redistribution: each rank ships
//!   the data bound for remote region *B* to the region's sending leader
//!   for *B*.
//! * `g` (`g_step`) — inter-region communication: exactly one message per
//!   (source region, destination region) pair with traffic.
//! * `r` (`r_step`) — final intra-region redistribution from the receiving
//!   leader to the final destinations.
//!
//! [`Plan::standard`] puts every pattern message directly in `ℓ`/`g` with
//! empty `s`/`r` — the §3.1 standard implementation — so all protocols
//! share one statistics/execution/cost machinery.
//!
//! With `dedup = true` (the §3.3 API extension) a value crosses a region
//! pair **once** regardless of how many final destinations need it; the
//! receiving leader expands it locally.

pub mod assign;
pub mod verify;

pub use assign::{AssignStrategy, LeaderAssignment};

use crate::pattern::CommPattern;
use locality::Topology;
use std::collections::BTreeMap;

/// One inter-region demand: (origin rank, value index, final destination).
type Demand = (usize, usize, usize);

/// One value slot inside a step message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    /// Global index of the value (the §3.3 extension's `send_idx`).
    pub index: usize,
    /// Rank owning the value.
    pub origin: usize,
    /// Final destination ranks served by this slot. Exactly one for
    /// `ℓ`/`s`/`r` slots and for non-dedup `g` slots; possibly several for
    /// dedup `g` slots (the receiving leader fans the value out).
    pub final_dsts: Vec<usize>,
}

impl Slot {
    /// Deterministic ordering key shared by sender and receiver.
    fn sort_key(&self) -> (usize, usize, usize) {
        (self.index, self.origin, self.final_dsts[0])
    }
}

/// One planned message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanMsg {
    pub src: usize,
    pub dst: usize,
    pub slots: Vec<Slot>,
}

impl PlanMsg {
    /// Number of values in the payload (message size in values; bytes are
    /// `8×` this for `f64` data).
    pub fn n_values(&self) -> usize {
        self.slots.len()
    }
}

/// A complete communication plan for one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    pub n_ranks: usize,
    /// True when built by [`Plan::aggregated`].
    pub aggregated: bool,
    /// True when duplicate values are removed from inter-region messages.
    pub dedup: bool,
    pub local: Vec<PlanMsg>,
    pub s_step: Vec<PlanMsg>,
    pub g_step: Vec<PlanMsg>,
    pub r_step: Vec<PlanMsg>,
}

impl Plan {
    /// The §3.1 standard implementation: every pattern message goes
    /// directly to its destination. Same-region messages land in `local`,
    /// the rest in `g_step`; `s`/`r` stay empty.
    pub fn standard(pattern: &CommPattern, topo: &Topology) -> Self {
        assert_eq!(pattern.n_ranks, topo.n_ranks());
        let mut local = Vec::new();
        let mut g_step = Vec::new();
        for (src, list) in pattern.sends.iter().enumerate() {
            for (dst, indices) in list {
                let slots = indices
                    .iter()
                    .map(|&i| Slot {
                        index: i,
                        origin: src,
                        final_dsts: vec![*dst],
                    })
                    .collect();
                let msg = PlanMsg {
                    src,
                    dst: *dst,
                    slots,
                };
                if topo.same_region(src, *dst) {
                    local.push(msg);
                } else {
                    g_step.push(msg);
                }
            }
        }
        Self {
            n_ranks: pattern.n_ranks,
            aggregated: false,
            dedup: false,
            local,
            s_step: Vec::new(),
            g_step,
            r_step: Vec::new(),
        }
    }

    /// Three-step locality-aware aggregation (§3.2), optionally with
    /// duplicate removal (§3.3).
    pub fn aggregated(
        pattern: &CommPattern,
        topo: &Topology,
        dedup: bool,
        strategy: AssignStrategy,
    ) -> Self {
        assert_eq!(pattern.n_ranks, topo.n_ranks());
        let mut local = Vec::new();

        // Collect inter-region demands per ordered region pair.
        let mut pair_demands: BTreeMap<(usize, usize), Vec<Demand>> = BTreeMap::new();
        for (src, list) in pattern.sends.iter().enumerate() {
            for (dst, indices) in list {
                if topo.same_region(src, *dst) {
                    let slots = indices
                        .iter()
                        .map(|&i| Slot {
                            index: i,
                            origin: src,
                            final_dsts: vec![*dst],
                        })
                        .collect();
                    local.push(PlanMsg {
                        src,
                        dst: *dst,
                        slots,
                    });
                } else {
                    let pair = (topo.region_of(src), topo.region_of(*dst));
                    let d = pair_demands.entry(pair).or_default();
                    d.extend(indices.iter().map(|&i| (src, i, *dst)));
                }
            }
        }

        // Inter-region volumes (in values) drive load balancing.
        let volumes: BTreeMap<(usize, usize), usize> = pair_demands
            .iter()
            .map(|(&pair, demands)| {
                let v = if dedup {
                    let mut idx: Vec<usize> = demands.iter().map(|d| d.1).collect();
                    idx.sort_unstable();
                    idx.dedup();
                    idx.len()
                } else {
                    demands.len()
                };
                (pair, v)
            })
            .collect();
        let leaders = assign::assign_leaders(&volumes, topo, strategy);

        let mut s_step = Vec::new();
        let mut g_step = Vec::new();
        let mut r_step = Vec::new();

        for (&pair, demands) in &pair_demands {
            let (lead_send, lead_recv) = leaders.get(pair);

            // Build the g slots for this pair.
            let mut g_slots: Vec<Slot> = if dedup {
                // one slot per unique value index, fanning out to all its
                // final destinations in the pair's destination region
                let mut by_index: BTreeMap<usize, (usize, Vec<usize>)> = BTreeMap::new();
                for &(origin, index, fd) in demands {
                    let e = by_index
                        .entry(index)
                        .or_insert_with(|| (origin, Vec::new()));
                    debug_assert_eq!(e.0, origin, "one owner per value index");
                    e.1.push(fd);
                }
                by_index
                    .into_iter()
                    .map(|(index, (origin, mut fds))| {
                        fds.sort_unstable();
                        fds.dedup();
                        Slot {
                            index,
                            origin,
                            final_dsts: fds,
                        }
                    })
                    .collect()
            } else {
                demands
                    .iter()
                    .map(|&(origin, index, fd)| Slot {
                        index,
                        origin,
                        final_dsts: vec![fd],
                    })
                    .collect()
            };
            g_slots.sort_by_key(Slot::sort_key);

            // s step: origins that are not the sending leader forward their
            // slots to it (one message per origin per region pair).
            let mut by_origin: BTreeMap<usize, Vec<Slot>> = BTreeMap::new();
            for slot in &g_slots {
                if slot.origin != lead_send {
                    by_origin.entry(slot.origin).or_default().push(slot.clone());
                }
            }
            for (origin, slots) in by_origin {
                s_step.push(PlanMsg {
                    src: origin,
                    dst: lead_send,
                    slots,
                });
            }

            // r step: the receiving leader forwards each delivered value to
            // every final destination other than itself (one message per
            // destination per region pair).
            let mut by_fd: BTreeMap<usize, Vec<Slot>> = BTreeMap::new();
            for slot in &g_slots {
                for &fd in &slot.final_dsts {
                    if fd != lead_recv {
                        by_fd.entry(fd).or_default().push(Slot {
                            index: slot.index,
                            origin: slot.origin,
                            final_dsts: vec![fd],
                        });
                    }
                }
            }
            for (fd, slots) in by_fd {
                r_step.push(PlanMsg {
                    src: lead_recv,
                    dst: fd,
                    slots,
                });
            }

            g_step.push(PlanMsg {
                src: lead_send,
                dst: lead_recv,
                slots: g_slots,
            });
        }

        local.sort_by_key(|m| (m.src, m.dst));
        s_step.sort_by_key(|m| (m.src, m.dst));
        g_step.sort_by_key(|m| (m.src, m.dst));
        r_step.sort_by_key(|m| (m.src, m.dst));

        Self {
            n_ranks: pattern.n_ranks,
            aggregated: true,
            dedup,
            local,
            s_step,
            g_step,
            r_step,
        }
    }

    /// All four step lists with their names, in execution order.
    pub fn steps(&self) -> [(&'static str, &[PlanMsg]); 4] {
        [
            ("local", self.local.as_slice()),
            ("s", self.s_step.as_slice()),
            ("g", self.g_step.as_slice()),
            ("r", self.r_step.as_slice()),
        ]
    }

    /// Total inter-region values moved per iteration.
    pub fn global_values(&self) -> usize {
        self.g_step.iter().map(PlanMsg::n_values).sum()
    }

    /// Total inter-region messages per iteration.
    pub fn global_msgs(&self) -> usize {
        self.g_step.len()
    }

    /// Total intra-region messages per iteration (ℓ + s + r).
    pub fn local_msgs(&self) -> usize {
        self.local.len() + self.s_step.len() + self.r_step.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::verify::verify_plan;
    use crate::pattern::CommPattern;

    fn example() -> (CommPattern, Topology) {
        (CommPattern::example_2_1(), Topology::block_nodes(8, 4))
    }

    #[test]
    fn standard_matches_figure_3() {
        let (pattern, topo) = example();
        let plan = Plan::standard(&pattern, &topo);
        // Figure 3: 15 inter-region messages, no local ones in the example
        assert_eq!(plan.global_msgs(), 15);
        assert!(plan.local.is_empty());
        assert_eq!(plan.global_values(), 17);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn partial_aggregation_matches_figure_4() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        // One region pair with traffic ⇒ exactly one inter-region message.
        assert_eq!(plan.global_msgs(), 1);
        // Duplicates still cross: 17 value slots.
        assert_eq!(plan.global_values(), 17);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn full_aggregation_matches_figure_5() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert_eq!(plan.global_msgs(), 1);
        // Each of the 8 values crosses the region pair exactly once.
        assert_eq!(plan.global_values(), 8);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn s_step_skips_the_leader_itself() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let leader = plan.g_step[0].src;
        assert!(plan
            .s_step
            .iter()
            .all(|m| m.src != leader && m.dst == leader));
        // three non-leader origins send s messages
        assert_eq!(plan.s_step.len(), 3);
    }

    #[test]
    fn r_step_covers_non_leader_destinations() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        let recv_leader = plan.g_step[0].dst;
        assert!(plan
            .r_step
            .iter()
            .all(|m| m.src == recv_leader && m.dst != recv_leader));
        // all four region-1 processes need data; leader keeps its own
        assert_eq!(plan.r_step.len(), 3);
    }

    #[test]
    fn dedup_never_increases_global_volume() {
        let (pattern, topo) = example();
        let partial = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let full = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert!(full.global_values() <= partial.global_values());
        // and the s step shrinks identically
        let s_partial: usize = partial.s_step.iter().map(PlanMsg::n_values).sum();
        let s_full: usize = full.s_step.iter().map(PlanMsg::n_values).sum();
        assert!(s_full <= s_partial);
    }

    #[test]
    fn single_region_pattern_is_all_local() {
        let pattern = CommPattern::new(
            4,
            vec![
                vec![(1, vec![0]), (2, vec![1])],
                vec![(3, vec![2])],
                vec![],
                vec![(0, vec![3])],
            ],
        );
        let topo = Topology::block_nodes(4, 4); // one region
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        assert_eq!(plan.global_msgs(), 0);
        assert!(plan.s_step.is_empty() && plan.r_step.is_empty());
        assert_eq!(plan.local.len(), 4);
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn empty_pattern_empty_plan() {
        let pattern = CommPattern::empty(8);
        let topo = Topology::block_nodes(8, 4);
        for plan in [
            Plan::standard(&pattern, &topo),
            Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced),
        ] {
            assert_eq!(plan.global_msgs() + plan.local_msgs(), 0);
            verify_plan(&pattern, &plan, &topo);
        }
    }
}
