//! Leader assignment: which rank in a region handles which remote region.
//!
//! Paper §3.2: "Methods of aggregation ... partition the communication
//! across all processes per region so that each sends a minimal portion of
//! messages for small data sizes, or an equal portion of data when sizes
//! are large", and §2: "each process in a region communicates with a unique
//! subset of other regions".

use locality::Topology;

/// Per-pair inter-region volumes, sorted ascending by region pair (the
/// order [`crate::agg::Plan::aggregated`] produces them in).
pub type PairVolumes = [((usize, usize), usize)];

/// How inter-region work is spread over a region's ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignStrategy {
    /// Deterministic striping: the leader for remote region `b` within
    /// region `a` is member `b mod |a|`. No setup cost, ignores volumes.
    RoundRobin,
    /// Greedy balance: region pairs are assigned (largest volume first) to
    /// the member with the least accumulated volume. This is the load
    /// balancing the paper amortizes inside
    /// `MPI_Neighbor_alltoallv_init`.
    LoadBalanced,
}

/// Chosen leaders for every ordered region pair with traffic, stored as a
/// pair-sorted flat vector (binary-searched lookups, no tree nodes).
#[derive(Debug, Clone)]
pub struct LeaderAssignment {
    /// `((src_region, dst_region), (sending leader, receiving leader))`,
    /// sorted by pair.
    map: Vec<((usize, usize), (usize, usize))>,
}

impl LeaderAssignment {
    /// Leaders of `pair`. Panics when the pair carried no traffic.
    pub fn get(&self, pair: (usize, usize)) -> (usize, usize) {
        let i = self
            .map
            .binary_search_by_key(&pair, |e| e.0)
            .unwrap_or_else(|_| panic!("region pair {pair:?} carried no traffic"));
        self.map[i].1
    }

    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &(usize, usize))> {
        self.map.iter().map(|(pair, leaders)| (pair, leaders))
    }

    /// Max over ranks of the inter-region volume assigned to them as
    /// senders (the balance metric).
    pub fn max_send_volume(&self, volumes: &PairVolumes, n_ranks: usize) -> usize {
        let mut per_rank = vec![0usize; n_ranks];
        for &(pair, (s, _)) in &self.map {
            let i = volumes
                .binary_search_by_key(&pair, |e| e.0)
                .expect("volume recorded for every assigned pair");
            per_rank[s] += volumes[i].1;
        }
        per_rank.into_iter().max().unwrap_or(0)
    }
}

/// Assign a sending and receiving leader to every region pair in
/// `volumes` (values per pair per iteration, sorted by pair).
pub fn assign_leaders(
    volumes: &PairVolumes,
    topo: &Topology,
    strategy: AssignStrategy,
) -> LeaderAssignment {
    debug_assert!(volumes.windows(2).all(|w| w[0].0 < w[1].0), "pair-sorted");
    let mut map = Vec::with_capacity(volumes.len());
    match strategy {
        AssignStrategy::RoundRobin => {
            for &((a, b), _) in volumes {
                let ma = topo.region_members(a);
                let mb = topo.region_members(b);
                let send = ma[b % ma.len()];
                let recv = mb[a % mb.len()];
                map.push(((a, b), (send, recv)));
            }
        }
        AssignStrategy::LoadBalanced => {
            // accumulated volume per rank, for each side separately
            let mut send_load = vec![0usize; topo.n_ranks()];
            let mut recv_load = vec![0usize; topo.n_ranks()];
            // biggest pairs first; ties broken by pair id for determinism
            let mut pairs: Vec<&((usize, usize), usize)> = volumes.iter().collect();
            pairs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            for &&((a, b), v) in &pairs {
                let send = *topo
                    .region_members(a)
                    .iter()
                    .min_by_key(|&&r| (send_load[r], r))
                    .expect("non-empty region");
                let recv = *topo
                    .region_members(b)
                    .iter()
                    .min_by_key(|&&r| (recv_load[r], r))
                    .expect("non-empty region");
                send_load[send] += v;
                recv_load[recv] += v;
                map.push(((a, b), (send, recv)));
            }
            map.sort_unstable_by_key(|e| e.0);
        }
    }
    // invariants: leaders live in their own regions
    for &((a, b), (s, r)) in &map {
        debug_assert_eq!(topo.region_of(s), a);
        debug_assert_eq!(topo.region_of(r), b);
    }
    LeaderAssignment { map }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volumes(pairs: &[((usize, usize), usize)]) -> Vec<((usize, usize), usize)> {
        let mut v = pairs.to_vec();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    #[test]
    fn round_robin_stripes_regions() {
        let topo = Topology::block_nodes(16, 4); // 4 regions of 4
        let v = volumes(&[((0, 1), 10), ((0, 2), 10), ((0, 3), 10)]);
        let la = assign_leaders(&v, &topo, AssignStrategy::RoundRobin);
        // sending leaders in region 0 stripe over members 1, 2, 3
        assert_eq!(la.get((0, 1)).0, 1);
        assert_eq!(la.get((0, 2)).0, 2);
        assert_eq!(la.get((0, 3)).0, 3);
        // receiving leaders: member (0 mod 4) = first member of each region
        assert_eq!(la.get((0, 1)).1, 4);
        assert_eq!(la.get((0, 2)).1, 8);
    }

    #[test]
    fn load_balance_beats_round_robin_on_skew() {
        let topo = Topology::block_nodes(8, 4); // 2 regions of 4
                                                // region 0 → region 1 only exists once; make a multi-region case
        let topo3 = Topology::block_nodes(12, 4); // 3 regions
                                                  // region 0 sends huge volume to region 1 and tiny to region 2;
                                                  // round-robin would pin both to fixed members regardless of volume.
        let v = volumes(&[((0, 1), 1000), ((0, 2), 1), ((1, 2), 500), ((2, 0), 300)]);
        let rr = assign_leaders(&v, &topo3, AssignStrategy::RoundRobin);
        let lb = assign_leaders(&v, &topo3, AssignStrategy::LoadBalanced);
        assert!(
            lb.max_send_volume(&v, 12) <= rr.max_send_volume(&v, 12),
            "load balancing should not be worse"
        );
        let _ = topo;
    }

    #[test]
    fn load_balance_spreads_equal_pairs() {
        let topo = Topology::block_nodes(8, 4); // 2 regions of 4
                                                // 4 equal pairs out of region 0 — impossible here (only 1 remote
                                                // region), so use 20 ranks / 5 regions.
        let topo5 = Topology::block_nodes(20, 4);
        let v = volumes(&[((0, 1), 7), ((0, 2), 7), ((0, 3), 7), ((0, 4), 7)]);
        let lb = assign_leaders(&v, &topo5, AssignStrategy::LoadBalanced);
        let mut leaders: Vec<usize> = v.iter().map(|&(p, _)| lb.get(p).0).collect();
        leaders.sort_unstable();
        leaders.dedup();
        assert_eq!(
            leaders.len(),
            4,
            "four distinct leaders for four equal pairs"
        );
        let _ = topo;
    }

    #[test]
    fn leaders_stay_in_their_regions() {
        let topo = Topology::block_nodes(32, 8);
        let v = volumes(&[((0, 1), 5), ((1, 0), 9), ((2, 3), 2), ((3, 1), 4)]);
        for strategy in [AssignStrategy::RoundRobin, AssignStrategy::LoadBalanced] {
            let la = assign_leaders(&v, &topo, strategy);
            for (&(a, b), &(s, r)) in la.iter() {
                assert_eq!(topo.region_of(s), a);
                assert_eq!(topo.region_of(r), b);
            }
        }
    }

    #[test]
    fn missing_pair_panics() {
        let topo = Topology::block_nodes(8, 4);
        let v = volumes(&[((0, 1), 3)]);
        let la = assign_leaders(&v, &topo, AssignStrategy::RoundRobin);
        assert_eq!(la.get((0, 1)).0 / 4, 0);
        let r = std::panic::catch_unwind(|| la.get((1, 0)));
        assert!(r.is_err());
    }
}
