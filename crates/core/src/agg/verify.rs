//! Plan verification: routing soundness.
//!
//! Independently of execution, a plan can be checked symbolically: chasing
//! every slot through ℓ/s/g/r must deliver **each (value, destination)
//! demand of the pattern exactly once**, and every staged hop must be
//! consistent (s slots must reappear in g; g fan-outs must be covered by r
//! or terminate at the receiving leader).
//!
//! This is test/diagnostic machinery, not a hot path — hash maps are fine
//! here; the planner and routing layers themselves are flat-sorted.

use super::{Plan, PlanMsg};
use crate::pattern::CommPattern;
use locality::Topology;
use std::collections::HashMap;

/// Panics with a diagnostic if `plan` does not deliver `pattern` exactly.
pub fn verify_plan(pattern: &CommPattern, plan: &Plan, topo: &Topology) {
    let mut delivered: HashMap<(usize, usize), usize> = HashMap::new();
    let mut deliver = |index: usize, dst: usize| {
        *delivered.entry((index, dst)).or_default() += 1;
    };

    // ℓ messages deliver directly.
    for m in &plan.local {
        assert!(
            topo.same_region(m.src, m.dst),
            "ℓ message {}→{} crosses regions",
            m.src,
            m.dst
        );
        for s in plan.local_slots.iter_range(m.slots.clone()) {
            assert_eq!(
                s.final_dsts,
                &[m.dst][..],
                "ℓ slot must target the receiver"
            );
            assert_eq!(s.origin, m.src, "ℓ slot origin must be the sender");
            deliver(s.index, m.dst);
        }
    }

    // s slots must be matched by identical g slots from the same leader.
    // Build a multiset of (origin, index, first_fd) per leader from g.
    let mut g_expect: HashMap<(usize, usize, usize, usize), usize> = HashMap::new();
    for m in &plan.g_step {
        assert!(
            !topo.same_region(m.src, m.dst),
            "g message {}→{} stays local",
            m.src,
            m.dst
        );
        for s in plan.g_slots.iter_range(m.slots.clone()) {
            assert!(!s.final_dsts.is_empty());
            if s.origin != m.src {
                *g_expect
                    .entry((m.src, s.origin, s.index, s.final_dsts[0]))
                    .or_default() += 1;
            }
            if !plan.dedup {
                assert_eq!(s.final_dsts.len(), 1, "non-dedup g slot fans out");
            }
        }
    }
    for m in &plan.s_step {
        assert!(
            topo.same_region(m.src, m.dst),
            "s message {}→{} crosses regions",
            m.src,
            m.dst
        );
        for s in plan.s_slots.iter_range(m.slots.clone()) {
            assert_eq!(s.origin, m.src, "s slot origin must be the sender");
            let key = (m.dst, s.origin, s.index, s.final_dsts[0]);
            let c = g_expect.get_mut(&key).unwrap_or_else(|| {
                panic!("s slot {key:?} has no matching g slot at leader {}", m.dst)
            });
            assert!(*c > 0, "s slot {key:?} over-supplied");
            *c -= 1;
        }
    }
    assert!(
        g_expect.values().all(|&c| c == 0),
        "g slots not covered by s: {:?}",
        g_expect
            .iter()
            .filter(|(_, &c)| c > 0)
            .take(5)
            .collect::<Vec<_>>()
    );

    // g fan-outs: terminate at the receiving leader or get forwarded by r.
    let mut r_expect: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for m in &plan.g_step {
        for s in plan.g_slots.iter_range(m.slots.clone()) {
            for &fd in s.final_dsts {
                assert_eq!(
                    topo.region_of(fd),
                    topo.region_of(m.dst),
                    "g slot final dst {fd} outside receiver region"
                );
                if fd == m.dst {
                    deliver(s.index, fd);
                } else {
                    *r_expect.entry((m.dst, fd, s.index)).or_default() += 1;
                }
            }
        }
    }
    for m in &plan.r_step {
        assert!(
            topo.same_region(m.src, m.dst),
            "r message {}→{} crosses regions",
            m.src,
            m.dst
        );
        for s in plan.r_slots.iter_range(m.slots.clone()) {
            assert_eq!(
                s.final_dsts,
                &[m.dst][..],
                "r slot must target the receiver"
            );
            let key = (m.src, m.dst, s.index);
            let c = r_expect
                .get_mut(&key)
                .unwrap_or_else(|| panic!("r slot {key:?} was never handed to this leader"));
            assert!(*c > 0, "r slot {key:?} duplicated");
            *c -= 1;
            deliver(s.index, m.dst);
        }
    }
    assert!(
        r_expect.values().all(|&c| c == 0),
        "g fan-outs not forwarded by r: {:?}",
        r_expect
            .iter()
            .filter(|(_, &c)| c > 0)
            .take(5)
            .collect::<Vec<_>>()
    );

    // Deliveries must match the pattern demands exactly once each.
    let mut demands: HashMap<(usize, usize), usize> = HashMap::new();
    for list in pattern.sends.iter() {
        for (dst, indices) in list {
            for &i in indices {
                *demands.entry((i, *dst)).or_default() += 1;
            }
        }
    }
    for (key, &count) in &demands {
        let got = delivered.get(key).copied().unwrap_or(0);
        assert_eq!(
            got, count,
            "demand {key:?} delivered {got} times, expected {count}"
        );
    }
    for (key, &count) in &delivered {
        assert!(
            demands.contains_key(key),
            "spurious delivery {key:?} ({count} times) not demanded by the pattern"
        );
    }
}

/// Count messages sent by each rank across the given step lists.
pub fn sends_per_rank(steps: &[&[PlanMsg]], n_ranks: usize) -> Vec<usize> {
    let mut out = vec![0usize; n_ranks];
    for step in steps {
        for m in *step {
            out[m.src] += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AssignStrategy, Plan};

    #[test]
    fn verify_accepts_all_protocols_on_example() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        verify_plan(&pattern, &Plan::standard(&pattern, &topo), &topo);
        for dedup in [false, true] {
            for strategy in [AssignStrategy::RoundRobin, AssignStrategy::LoadBalanced] {
                verify_plan(
                    &pattern,
                    &Plan::aggregated(&pattern, &topo, dedup, strategy),
                    &topo,
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "delivered 0 times")]
    fn verify_rejects_dropped_message() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let mut plan = Plan::standard(&pattern, &topo);
        plan.g_step.pop();
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    #[should_panic(expected = "spurious delivery")]
    fn verify_rejects_extra_delivery() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let mut plan = Plan::standard(&pattern, &topo);
        // forge a one-slot message delivering an undemanded index
        let m = plan.g_step[0].clone();
        let fd = plan.g_slots.final_dsts(m.slots.start)[0];
        let p = plan.g_slots.push(9999, m.src, [fd]);
        plan.g_step.push(PlanMsg {
            src: m.src,
            dst: m.dst,
            slots: p..p + 1,
        });
        verify_plan(&pattern, &plan, &topo);
    }

    #[test]
    fn sends_per_rank_counts() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan = Plan::standard(&pattern, &topo);
        let counts = sends_per_rank(&[&plan.g_step], 8);
        assert_eq!(counts[..4].iter().sum::<usize>(), 15);
        assert_eq!(counts[4..].iter().sum::<usize>(), 0);
    }
}
