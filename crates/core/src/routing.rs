//! Per-rank routing: the staging machinery shared by every executor.
//!
//! A [`Plan`] is a *global* description of one collective. Before a rank
//! can post requests it must derive its local view: which buffers to
//! register, which tag each message uses, where each send-buffer slot gets
//! its value from, and where each received slot is delivered. That
//! derivation — the copy-map construction — is identical for the plain
//! persistent executor ([`crate::exec::PersistentNeighbor`]) and the
//! partitioned one ([`crate::exec_partitioned::PartitionedNeighbor`]); it
//! lives here so the executors only differ in *how* they move the bytes,
//! not in how they decide what goes where.
//!
//! Inter-region (`g`) messages are laid out **origin-major**: the slots
//! contributed by each staging rank form one contiguous run, recorded in
//! [`GSendRoute::bounds`]. The plain executor ignores the bounds and ships
//! the buffer as a single message; the partitioned executor registers one
//! partition per run and injects each the moment its staging data arrives
//! (`MPI_Pready`-style, the paper's §5 combination). Both sides of a
//! message derive the same layout from the shared plan, so matching is
//! deterministic.
//!
//! Two construction paths exist:
//!
//! * [`RankRouting::build`] derives one rank's view by scanning the plan —
//!   O(plan) per rank, so initializing a whole world this way is O(N·M).
//! * [`RankRouting::build_all`] derives **every** rank's view in a single
//!   sweep of the plan — O(M + N) total. Each message is visited once and
//!   contributes to its two endpoints; slot positions resolve through a
//!   precomputed inverse-index table (global index → input position) and
//!   binary searches over sorted ghost lists, not per-rank hash maps. The
//!   unified [`crate::NeighborAlltoallv`] builder initializes through this
//!   path. Both paths produce identical routings (property-tested).

use crate::agg::{Plan, PlanMsg, SlotArena};
use crate::pattern::CommPattern;
use std::ops::Range;

/// Tag layout: `tag_base + step*4096 + seq`, where `seq` disambiguates
/// multiple messages between the same rank pair within a step (e.g. one s
/// message per region pair). Both sides derive `seq` from the shared plan
/// order, so matching is unambiguous.
pub const STEP_TAG_STRIDE: u64 = 4096;

/// Step identifiers used in the tag layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    Local = 0,
    S = 1,
    G = 2,
    R = 3,
}

/// Assign tags to a step's messages in shared plan order.
///
/// Step lists are sorted by `(src, dst)` — messages of one rank pair are
/// adjacent — so the per-pair sequence number is the position within the
/// current run; no per-call map is needed. The sortedness is a hard
/// precondition: unsorted input would silently assign one tag to several
/// same-pair messages, so it panics instead (one comparison per message,
/// already paid by the run detection).
pub fn msg_tags(msgs: &[PlanMsg], step: Step, tag_base: u64) -> Vec<u64> {
    let step_base = tag_base + (step as u64) * STEP_TAG_STRIDE;
    let mut tags = Vec::with_capacity(msgs.len());
    let mut seq = 0u64;
    for (i, m) in msgs.iter().enumerate() {
        if i > 0 && (msgs[i - 1].src, msgs[i - 1].dst) == (m.src, m.dst) {
            seq += 1;
        } else {
            assert!(
                i == 0 || (msgs[i - 1].src, msgs[i - 1].dst) < (m.src, m.dst),
                "step messages must be (src, dst)-sorted for tag assignment"
            );
            seq = 0;
        }
        tags.push(step_base + seq);
    }
    tags
}

/// Where one partition of a `g` send gets its values from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartSource {
    /// This rank's own contribution: `input[p]` for each listed position.
    Input(Vec<usize>),
    /// The whole buffer of the `idx`-th s-step receive, in order (staging
    /// ranks sort their s slots into the partition's slot order).
    Staged { s_recv: usize },
}

/// One origin's contiguous run inside a `g` send buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GPartRoute {
    pub origin: usize,
    /// Slot range of this partition within the send buffer.
    pub range: Range<usize>,
    pub source: PartSource,
}

/// A send whose slots all come straight from this rank's input
/// (`ℓ` and `s` steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRoute {
    pub dst: usize,
    pub tag: u64,
    /// Input position feeding each slot.
    pub sources: Vec<usize>,
}

/// A receive delivered straight into the output vector (`ℓ`, `g`, `r`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvRoute {
    pub src: usize,
    pub tag: u64,
    pub len: usize,
    /// `(slot position, output position)` pairs delivered here.
    pub outputs: Vec<(usize, usize)>,
}

/// An inter-region send: origin-major buffer with partition bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GSendRoute {
    pub dst: usize,
    pub tag: u64,
    pub len: usize,
    /// Prefix offsets per partition (len = parts.len() + 1).
    pub bounds: Vec<usize>,
    pub parts: Vec<GPartRoute>,
}

/// An inter-region receive: origin-major buffer with partition bounds,
/// plus delivery and forwarding maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GRecvRoute {
    pub src: usize,
    pub tag: u64,
    pub len: usize,
    /// Prefix offsets per partition (mirrors the sender's bounds).
    pub bounds: Vec<usize>,
    /// Slots whose final destination is this rank.
    pub outputs: Vec<(usize, usize)>,
}

impl From<SRecvRoute> for RecvRoute {
    /// Drop the partition target — how a plain (non-partitioned) executor
    /// drains a staging receive (its buffer feeds g sends; nothing goes
    /// straight to the output vector).
    fn from(s: SRecvRoute) -> Self {
        Self {
            src: s.src,
            tag: s.tag,
            len: s.len,
            outputs: Vec::new(),
        }
    }
}

impl From<GRecvRoute> for RecvRoute {
    /// Drop the partition bounds — how a plain (non-partitioned) executor
    /// receives an inter-region message.
    fn from(g: GRecvRoute) -> Self {
        Self {
            src: g.src,
            tag: g.tag,
            len: g.len,
            outputs: g.outputs,
        }
    }
}

/// An s-step receive at a sending leader: it fills exactly one partition
/// of one `g` send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SRecvRoute {
    pub src: usize,
    pub tag: u64,
    pub len: usize,
    /// Index into [`RankRouting::g_sends`].
    pub g_send: usize,
    /// Partition of that send this staging message fills.
    pub partition: usize,
}

/// An r-step send at a receiving leader: each slot forwards a received
/// `g` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RSendRoute {
    pub dst: usize,
    pub tag: u64,
    /// `(g receive index, slot position)` feeding each slot.
    pub sources: Vec<(usize, usize)>,
}

/// Everything one rank needs to register and drive its part of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRouting {
    pub me: usize,
    /// Global indices whose values the caller provides to `start`, sorted.
    pub input_index: Vec<usize>,
    /// Global indices `wait` produces, sorted.
    pub output_index: Vec<usize>,
    pub local_sends: Vec<SendRoute>,
    pub local_recvs: Vec<RecvRoute>,
    pub s_sends: Vec<SendRoute>,
    pub s_recvs: Vec<SRecvRoute>,
    pub g_sends: Vec<GSendRoute>,
    pub g_recvs: Vec<GRecvRoute>,
    pub r_sends: Vec<RSendRoute>,
    pub r_recvs: Vec<RecvRoute>,
}

/// One g message's slots reordered origin-major, with partition bounds.
struct GLayout {
    /// Arena positions sorted by (origin, index, first final dst).
    order: Vec<usize>,
    /// Origins in ascending order, one partition each.
    origins: Vec<usize>,
    /// Prefix offsets per partition (len = origins.len() + 1).
    bounds: Vec<usize>,
}

fn g_layout(slots: &SlotArena, m: &PlanMsg) -> GLayout {
    let mut order: Vec<usize> = m.slots.clone().collect();
    // the key is unique per slot, so the unstable sort is deterministic
    order.sort_unstable_by_key(|&p| (slots.origin(p), slots.index(p), slots.final_dsts(p)[0]));
    let mut origins = Vec::new();
    let mut bounds = vec![0usize];
    for (i, &p) in order.iter().enumerate() {
        let o = slots.origin(p);
        if origins.last() != Some(&o) {
            if !origins.is_empty() {
                bounds.push(i);
            }
            origins.push(o);
        }
    }
    bounds.push(order.len());
    GLayout {
        order,
        origins,
        bounds,
    }
}

/// Sort an s message's slots to the per-origin order of the g partition.
fn s_order(slots: &SlotArena, m: &PlanMsg) -> Vec<usize> {
    let mut order: Vec<usize> = m.slots.clone().collect();
    order.sort_unstable_by_key(|&p| (slots.index(p), slots.final_dsts(p)[0]));
    order
}

/// `(sending leader, origin, first index, first fd)` of a g partition —
/// the key an s message resolves its partition through. Unique: an index
/// has one origin, and one first destination per region pair.
type PartKey = (usize, usize, usize, usize);
/// `(receiving leader, index, final dst)` — the key an r slot resolves its
/// delivered g value through.
type FwdKey = (usize, usize, usize);

impl RankRouting {
    /// Build rank `me`'s routing for `plan`. Every rank must construct the
    /// *same* `pattern`/`plan` (deterministic planning makes this trivially
    /// true). `tag_base` isolates concurrent collectives on the same
    /// communicator; use a distinct base per persistent object (e.g. per
    /// AMG level).
    ///
    /// This scans the whole plan for one rank; when every rank's routing is
    /// needed, [`RankRouting::build_all`] derives all of them in a single
    /// sweep instead.
    pub fn build(pattern: &CommPattern, plan: &Plan, me: usize, tag_base: u64) -> Self {
        let input_index = pattern.src_indices(me);
        let output_index = pattern.dst_indices(me);
        // every input-position lookup is for a slot this rank owns, so its
        // own sorted input list is the whole search space — no global
        // inverse index needed on the per-rank path
        let in_pos = |i: usize| {
            input_index
                .binary_search(&i)
                .expect("slot index in this rank's input set")
        };
        let out_pos = |i: usize| {
            output_index
                .binary_search(&i)
                .expect("slot index in this rank's ghost set")
        };

        // ℓ step: direct sends from input to output.
        let mut local_sends = Vec::new();
        let mut local_recvs = Vec::new();
        let local_tags = msg_tags(&plan.local, Step::Local, tag_base);
        for (m, &tag) in plan.local.iter().zip(&local_tags) {
            if m.src == me {
                local_sends.push(SendRoute {
                    dst: m.dst,
                    tag,
                    sources: plan
                        .local_slots
                        .iter_range(m.slots.clone())
                        .map(|sl| in_pos(sl.index))
                        .collect(),
                });
            }
            if m.dst == me {
                local_recvs.push(RecvRoute {
                    src: m.src,
                    tag,
                    len: m.n_values(),
                    outputs: plan
                        .local_slots
                        .iter_range(m.slots.clone())
                        .enumerate()
                        .map(|(p, sl)| (p, out_pos(sl.index)))
                        .collect(),
                });
            }
        }

        // g step: origin-major layout with partition bounds. While walking,
        // record at the sending leader which (origin, leading slot) each
        // staged partition corresponds to — an s message is matched to its
        // partition by its first slot, which is unique across g messages
        // (an index has one origin and one first destination per region).
        let mut g_sends: Vec<GSendRoute> = Vec::new();
        let mut g_recvs = Vec::new();
        // (me, origin, leading index, leading fd) → (g send, partition)
        let mut part_of: Vec<(PartKey, (usize, usize))> = Vec::new();
        // forwarding map for r: (me, index, final dst) → (g recv, slot pos)
        let mut fwd: Vec<(FwdKey, (usize, usize))> = Vec::new();
        let g_tags = msg_tags(&plan.g_step, Step::G, tag_base);
        for (m, &tag) in plan.g_step.iter().zip(&g_tags) {
            if m.src != me && m.dst != me {
                continue; // don't lay out messages this rank never touches
            }
            let layout = g_layout(&plan.g_slots, m);
            if m.src == me {
                let parts = layout
                    .origins
                    .iter()
                    .enumerate()
                    .map(|(p, &origin)| {
                        let range = layout.bounds[p]..layout.bounds[p + 1];
                        let source = if origin == me {
                            PartSource::Input(
                                layout.order[range.clone()]
                                    .iter()
                                    .map(|&ap| in_pos(plan.g_slots.index(ap)))
                                    .collect(),
                            )
                        } else {
                            let first = plan.g_slots.get(layout.order[range.start]);
                            part_of.push((
                                (me, origin, first.index, first.final_dsts[0]),
                                (g_sends.len(), p),
                            ));
                            // resolved to an s receive in the s pass below
                            PartSource::Staged { s_recv: usize::MAX }
                        };
                        GPartRoute {
                            origin,
                            range,
                            source,
                        }
                    })
                    .collect();
                g_sends.push(GSendRoute {
                    dst: m.dst,
                    tag,
                    len: layout.order.len(),
                    bounds: layout.bounds.clone(),
                    parts,
                });
            }
            if m.dst == me {
                let mut outputs = Vec::new();
                for (pos, &ap) in layout.order.iter().enumerate() {
                    let sl = plan.g_slots.get(ap);
                    for &fd in sl.final_dsts {
                        if fd == me {
                            outputs.push((pos, out_pos(sl.index)));
                        } else {
                            fwd.push(((me, sl.index, fd), (g_recvs.len(), pos)));
                        }
                    }
                }
                g_recvs.push(GRecvRoute {
                    src: m.src,
                    tag,
                    len: layout.order.len(),
                    bounds: layout.bounds,
                    outputs,
                });
            }
        }
        part_of.sort_unstable();
        fwd.sort_unstable();

        // s step: staging ranks ship their contribution to the sending
        // leader in the partition's slot order; the leader resolves which
        // partition each staging message fills.
        let mut s_sends = Vec::new();
        let mut s_recvs = Vec::new();
        let s_tags = msg_tags(&plan.s_step, Step::S, tag_base);
        for (m, &tag) in plan.s_step.iter().zip(&s_tags) {
            if m.src != me && m.dst != me {
                continue;
            }
            let order = s_order(&plan.s_slots, m);
            if m.src == me {
                s_sends.push(SendRoute {
                    dst: m.dst,
                    tag,
                    sources: order
                        .iter()
                        .map(|&ap| in_pos(plan.s_slots.index(ap)))
                        .collect(),
                });
            }
            if m.dst == me {
                let first = plan.s_slots.get(order[0]);
                let key: PartKey = (me, m.src, first.index, first.final_dsts[0]);
                let k = part_of
                    .binary_search_by_key(&key, |e| e.0)
                    .expect("staging message matches a g partition");
                let (g_send, partition) = part_of[k].1;
                let part = &mut g_sends[g_send].parts[partition];
                assert_eq!(
                    part.range.len(),
                    order.len(),
                    "staging/partition length mismatch"
                );
                part.source = PartSource::Staged {
                    s_recv: s_recvs.len(),
                };
                s_recvs.push(SRecvRoute {
                    src: m.src,
                    tag,
                    len: order.len(),
                    g_send,
                    partition,
                });
            }
        }
        for g in &g_sends {
            for part in &g.parts {
                assert_ne!(
                    part.source,
                    PartSource::Staged { s_recv: usize::MAX },
                    "rank {me}: partition from origin {} never staged",
                    part.origin
                );
            }
        }

        // r step: receiving leaders forward delivered g values.
        let mut r_sends = Vec::new();
        let mut r_recvs = Vec::new();
        let r_tags = msg_tags(&plan.r_step, Step::R, tag_base);
        for (m, &tag) in plan.r_step.iter().zip(&r_tags) {
            if m.src == me {
                r_sends.push(RSendRoute {
                    dst: m.dst,
                    tag,
                    sources: plan
                        .r_slots
                        .iter_range(m.slots.clone())
                        .map(|sl| {
                            let key: FwdKey = (me, sl.index, m.dst);
                            let k = fwd
                                .binary_search_by_key(&key, |e| e.0)
                                .expect("forwarded value was delivered by a g receive");
                            fwd[k].1
                        })
                        .collect(),
                });
            }
            if m.dst == me {
                r_recvs.push(RecvRoute {
                    src: m.src,
                    tag,
                    len: m.n_values(),
                    outputs: plan
                        .r_slots
                        .iter_range(m.slots.clone())
                        .enumerate()
                        .map(|(p, sl)| (p, out_pos(sl.index)))
                        .collect(),
                });
            }
        }

        Self {
            me,
            input_index,
            output_index,
            local_sends,
            local_recvs,
            s_sends,
            s_recvs,
            g_sends,
            g_recvs,
            r_sends,
            r_recvs,
        }
    }

    /// Derive **every** rank's routing in one sweep of the plan.
    ///
    /// Each message is visited once and contributes routes to both of its
    /// endpoints, so the whole-world derivation is O(M + N) in the plan
    /// size M and rank count N — against O(N·M) for N calls to
    /// [`RankRouting::build`]. The g layouts are also computed once per
    /// message instead of once per endpoint. Produces routings identical
    /// to the per-rank path.
    pub fn build_all(pattern: &CommPattern, plan: &Plan, tag_base: u64) -> Vec<RankRouting> {
        let n = plan.n_ranks;
        let inputs = pattern.all_src_indices();
        let inv = crate::pattern::InverseIndex::from_inputs(&inputs);
        let outputs = pattern.all_dst_indices();
        let out_pos = |rank: usize, i: usize| {
            outputs[rank]
                .binary_search(&i)
                .expect("slot index in the receiver's ghost set")
        };

        let mut routings: Vec<RankRouting> = (0..n)
            .map(|me| RankRouting {
                me,
                input_index: Vec::new(),
                output_index: Vec::new(),
                local_sends: Vec::new(),
                local_recvs: Vec::new(),
                s_sends: Vec::new(),
                s_recvs: Vec::new(),
                g_sends: Vec::new(),
                g_recvs: Vec::new(),
                r_sends: Vec::new(),
                r_recvs: Vec::new(),
            })
            .collect();

        // ℓ
        let local_tags = msg_tags(&plan.local, Step::Local, tag_base);
        for (m, &tag) in plan.local.iter().zip(&local_tags) {
            routings[m.src].local_sends.push(SendRoute {
                dst: m.dst,
                tag,
                sources: plan
                    .local_slots
                    .iter_range(m.slots.clone())
                    .map(|sl| inv.input_pos(sl.index))
                    .collect(),
            });
            routings[m.dst].local_recvs.push(RecvRoute {
                src: m.src,
                tag,
                len: m.n_values(),
                outputs: plan
                    .local_slots
                    .iter_range(m.slots.clone())
                    .enumerate()
                    .map(|(p, sl)| (p, out_pos(m.dst, sl.index)))
                    .collect(),
            });
        }

        // g: one shared layout per message feeds both endpoints.
        let mut part_of: Vec<(PartKey, (usize, usize))> = Vec::new();
        let mut fwd: Vec<(FwdKey, (usize, usize))> = Vec::new();
        let g_tags = msg_tags(&plan.g_step, Step::G, tag_base);
        for (m, &tag) in plan.g_step.iter().zip(&g_tags) {
            let layout = g_layout(&plan.g_slots, m);

            let g_send_idx = routings[m.src].g_sends.len();
            let parts = layout
                .origins
                .iter()
                .enumerate()
                .map(|(p, &origin)| {
                    let range = layout.bounds[p]..layout.bounds[p + 1];
                    let source = if origin == m.src {
                        PartSource::Input(
                            layout.order[range.clone()]
                                .iter()
                                .map(|&ap| inv.input_pos(plan.g_slots.index(ap)))
                                .collect(),
                        )
                    } else {
                        let first = plan.g_slots.get(layout.order[range.start]);
                        part_of.push((
                            (m.src, origin, first.index, first.final_dsts[0]),
                            (g_send_idx, p),
                        ));
                        PartSource::Staged { s_recv: usize::MAX }
                    };
                    GPartRoute {
                        origin,
                        range,
                        source,
                    }
                })
                .collect();
            routings[m.src].g_sends.push(GSendRoute {
                dst: m.dst,
                tag,
                len: layout.order.len(),
                bounds: layout.bounds.clone(),
                parts,
            });

            let g_recv_idx = routings[m.dst].g_recvs.len();
            let mut outs = Vec::new();
            for (pos, &ap) in layout.order.iter().enumerate() {
                let sl = plan.g_slots.get(ap);
                for &fd in sl.final_dsts {
                    if fd == m.dst {
                        outs.push((pos, out_pos(m.dst, sl.index)));
                    } else {
                        fwd.push(((m.dst, sl.index, fd), (g_recv_idx, pos)));
                    }
                }
            }
            routings[m.dst].g_recvs.push(GRecvRoute {
                src: m.src,
                tag,
                len: layout.order.len(),
                bounds: layout.bounds,
                outputs: outs,
            });
        }
        part_of.sort_unstable();
        fwd.sort_unstable();

        // s
        let s_tags = msg_tags(&plan.s_step, Step::S, tag_base);
        for (m, &tag) in plan.s_step.iter().zip(&s_tags) {
            let order = s_order(&plan.s_slots, m);
            routings[m.src].s_sends.push(SendRoute {
                dst: m.dst,
                tag,
                sources: order
                    .iter()
                    .map(|&ap| inv.input_pos(plan.s_slots.index(ap)))
                    .collect(),
            });
            let first = plan.s_slots.get(order[0]);
            let key: PartKey = (m.dst, m.src, first.index, first.final_dsts[0]);
            let k = part_of
                .binary_search_by_key(&key, |e| e.0)
                .expect("staging message matches a g partition");
            let (g_send, partition) = part_of[k].1;
            let leader = &mut routings[m.dst];
            let part = &mut leader.g_sends[g_send].parts[partition];
            assert_eq!(
                part.range.len(),
                order.len(),
                "staging/partition length mismatch"
            );
            part.source = PartSource::Staged {
                s_recv: leader.s_recvs.len(),
            };
            leader.s_recvs.push(SRecvRoute {
                src: m.src,
                tag,
                len: order.len(),
                g_send,
                partition,
            });
        }
        for r in &routings {
            for g in &r.g_sends {
                for part in &g.parts {
                    assert_ne!(
                        part.source,
                        PartSource::Staged { s_recv: usize::MAX },
                        "rank {}: partition from origin {} never staged",
                        r.me,
                        part.origin
                    );
                }
            }
        }

        // r
        let r_tags = msg_tags(&plan.r_step, Step::R, tag_base);
        for (m, &tag) in plan.r_step.iter().zip(&r_tags) {
            routings[m.src].r_sends.push(RSendRoute {
                dst: m.dst,
                tag,
                sources: plan
                    .r_slots
                    .iter_range(m.slots.clone())
                    .map(|sl| {
                        let key: FwdKey = (m.src, sl.index, m.dst);
                        let k = fwd
                            .binary_search_by_key(&key, |e| e.0)
                            .expect("forwarded value was delivered by a g receive");
                        fwd[k].1
                    })
                    .collect(),
            });
            routings[m.dst].r_recvs.push(RecvRoute {
                src: m.src,
                tag,
                len: m.n_values(),
                outputs: plan
                    .r_slots
                    .iter_range(m.slots.clone())
                    .enumerate()
                    .map(|(p, sl)| (p, out_pos(m.dst, sl.index)))
                    .collect(),
            });
        }

        for (r, (ii, oi)) in routings.iter_mut().zip(inputs.into_iter().zip(outputs)) {
            r.input_index = ii;
            r.output_index = oi;
        }
        routings
    }
}

/// One entry of a batch routing sweep: a pattern, its resolved plan, the
/// tag base carved for it, and whether its executor takes its g-send
/// buffers from the batch-shared arena (the plain executor does; the
/// partitioned executor owns per-message partitioned buffers).
pub struct BatchEntryPlan<'a> {
    pub pattern: &'a CommPattern,
    pub plan: &'a Plan,
    pub tag_base: u64,
    pub shared_arena: bool,
}

/// Everything one rank needs to register and drive **every** entry of a
/// batch: the per-entry routings plus the layout of the rank's single
/// staging arena (each shared-arena entry's g sends occupy one contiguous
/// window of it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRankRouting {
    /// This rank's routing for each entry, in batch order.
    pub entries: Vec<RankRouting>,
    /// Offset of each entry's g-send window within the rank's batch arena
    /// (`None` for entries that do not stage through the shared arena).
    pub arena_off: Vec<Option<usize>>,
    /// Total arena elements this rank allocates for the whole batch.
    pub arena_len: usize,
}

impl RankRouting {
    /// Derive every rank's routing for **every** entry of a batch in one
    /// fused sweep: each entry's plan is walked once (the
    /// [`RankRouting::build_all`] single-pass derivation), results are
    /// transposed into per-rank [`BatchRankRouting`]s, and the shared
    /// staging arena is laid out per rank — one allocation covering all
    /// entries' g sends instead of one arena per request. Total work is
    /// O(ΣMᵢ + E·N) over E entries with plan sizes Mᵢ on N ranks.
    pub fn build_all_batch(entries: &[BatchEntryPlan]) -> Vec<BatchRankRouting> {
        let n = match entries.first() {
            Some(e) => e.plan.n_ranks,
            None => return Vec::new(),
        };
        let mut out: Vec<BatchRankRouting> = (0..n)
            .map(|_| BatchRankRouting {
                entries: Vec::with_capacity(entries.len()),
                arena_off: Vec::with_capacity(entries.len()),
                arena_len: 0,
            })
            .collect();
        for e in entries {
            assert_eq!(e.plan.n_ranks, n, "batch entries must share a rank count");
            let routings = Self::build_all(e.pattern, e.plan, e.tag_base);
            for (rank, routing) in routings.into_iter().enumerate() {
                let br = &mut out[rank];
                let off = if e.shared_arena {
                    let g_total: usize = routing.g_sends.iter().map(|g| g.len).sum();
                    let o = br.arena_len;
                    br.arena_len += g_total;
                    Some(o)
                } else {
                    None
                };
                br.arena_off.push(off);
                br.entries.push(routing);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AssignStrategy;
    use locality::Topology;

    fn example() -> (CommPattern, Topology) {
        (CommPattern::example_2_1(), Topology::block_nodes(8, 4))
    }

    #[test]
    fn g_layout_origin_major() {
        let mut slots = SlotArena::new();
        slots.push(9, 2, [4]);
        slots.push(1, 0, [5]);
        slots.push(5, 2, [6]);
        slots.push(3, 1, [4]);
        let m = PlanMsg {
            src: 0,
            dst: 4,
            slots: 0..4,
        };
        let l = g_layout(&slots, &m);
        assert_eq!(l.origins, vec![0, 1, 2]);
        assert_eq!(l.bounds, vec![0, 1, 2, 4]);
        assert_eq!(slots.index(l.order[2]), 5); // origin 2 sorted by index
        assert_eq!(slots.index(l.order[3]), 9);
    }

    #[test]
    fn tags_disambiguate_same_pair_messages() {
        let msg = |src, dst| PlanMsg {
            src,
            dst,
            slots: 0..1,
        };
        let msgs = vec![msg(0, 1), msg(0, 1), msg(2, 1)];
        let tags = msg_tags(&msgs, Step::S, 100);
        assert_eq!(tags[0], 100 + STEP_TAG_STRIDE);
        assert_eq!(tags[1], 100 + STEP_TAG_STRIDE + 1);
        assert_eq!(tags[2], 100 + STEP_TAG_STRIDE);
    }

    #[test]
    #[should_panic(expected = "sorted for tag assignment")]
    fn unsorted_messages_rejected_by_tagging() {
        let msg = |src, dst| PlanMsg {
            src,
            dst,
            slots: 0..1,
        };
        // same-pair messages separated by another pair would alias tags
        msg_tags(&[msg(0, 1), msg(2, 1), msg(0, 1)], Step::S, 0);
    }

    #[test]
    fn standard_plan_routes_have_no_staging() {
        let (pattern, topo) = example();
        let plan = Plan::standard(&pattern, &topo);
        for me in 0..8 {
            let r = RankRouting::build(&pattern, &plan, me, 0);
            assert!(r.s_sends.is_empty() && r.s_recvs.is_empty());
            assert!(r.r_sends.is_empty() && r.r_recvs.is_empty());
            for g in &r.g_sends {
                assert_eq!(g.parts.len(), 1, "standard g messages have one origin");
                assert_eq!(g.parts[0].origin, me);
            }
        }
    }

    #[test]
    fn aggregated_routing_is_consistent_across_ranks() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced);
        let routings: Vec<RankRouting> = (0..8)
            .map(|me| RankRouting::build(&pattern, &plan, me, 0))
            .collect();
        // every send matches a receive with the same tag and length
        for r in &routings {
            for s in &r.s_sends {
                let peer = &routings[s.dst];
                let m = peer
                    .s_recvs
                    .iter()
                    .find(|x| x.src == r.me && x.tag == s.tag)
                    .expect("matching s recv");
                assert_eq!(m.len, s.sources.len());
            }
            for g in &r.g_sends {
                let peer = &routings[g.dst];
                let m = peer
                    .g_recvs
                    .iter()
                    .find(|x| x.src == r.me && x.tag == g.tag)
                    .expect("matching g recv");
                assert_eq!(m.len, g.len);
                assert_eq!(m.bounds, g.bounds);
            }
            for s in &r.r_sends {
                let dst = s.sources.len();
                assert!(dst > 0);
            }
        }
    }

    #[test]
    fn build_all_matches_per_rank_build() {
        let (pattern, topo) = example();
        for (dedup, strategy) in [
            (false, AssignStrategy::RoundRobin),
            (true, AssignStrategy::LoadBalanced),
        ] {
            let plan = Plan::aggregated(&pattern, &topo, dedup, strategy);
            let all = RankRouting::build_all(&pattern, &plan, 512);
            for (me, r) in all.iter().enumerate() {
                assert_eq!(r, &RankRouting::build(&pattern, &plan, me, 512));
            }
        }
        let plan = Plan::standard(&pattern, &topo);
        let all = RankRouting::build_all(&pattern, &plan, 0);
        for (me, r) in all.iter().enumerate() {
            assert_eq!(r, &RankRouting::build(&pattern, &plan, me, 0));
        }
    }

    #[test]
    fn batch_sweep_matches_independent_build_all() {
        let (pattern, topo) = example();
        let plan_a = Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced);
        let plan_b = Plan::standard(&pattern, &topo);
        let batch = RankRouting::build_all_batch(&[
            BatchEntryPlan {
                pattern: &pattern,
                plan: &plan_a,
                tag_base: 1 << 30,
                shared_arena: true,
            },
            BatchEntryPlan {
                pattern: &pattern,
                plan: &plan_b,
                tag_base: 2 << 30,
                shared_arena: true,
            },
            BatchEntryPlan {
                pattern: &pattern,
                plan: &plan_a,
                tag_base: 3 << 30,
                shared_arena: false,
            },
        ]);
        let a = RankRouting::build_all(&pattern, &plan_a, 1 << 30);
        let b = RankRouting::build_all(&pattern, &plan_b, 2 << 30);
        let c = RankRouting::build_all(&pattern, &plan_a, 3 << 30);
        assert_eq!(batch.len(), 8);
        for (rank, br) in batch.iter().enumerate() {
            // per-entry routings identical to independent sweeps
            assert_eq!(br.entries[0], a[rank]);
            assert_eq!(br.entries[1], b[rank]);
            assert_eq!(br.entries[2], c[rank]);
            // arena: entry 0 at offset 0, entry 1 right behind it, the
            // non-shared entry 2 gets no window and adds no length
            let g_total = |r: &RankRouting| r.g_sends.iter().map(|g| g.len).sum::<usize>();
            assert_eq!(br.arena_off[0], Some(0));
            assert_eq!(br.arena_off[1], Some(g_total(&a[rank])));
            assert_eq!(br.arena_off[2], None);
            assert_eq!(br.arena_len, g_total(&a[rank]) + g_total(&b[rank]));
        }
    }

    #[test]
    fn staged_partitions_resolve_to_s_recvs() {
        let (pattern, topo) = example();
        let plan = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let leader = plan.g_step[0].src;
        let r = RankRouting::build(&pattern, &plan, leader, 7);
        assert_eq!(r.g_sends.len(), 1);
        let staged: Vec<usize> = r.g_sends[0]
            .parts
            .iter()
            .filter_map(|p| match p.source {
                PartSource::Staged { s_recv } => Some(s_recv),
                PartSource::Input(_) => None,
            })
            .collect();
        // every s receive fills exactly one distinct partition
        let mut sorted = staged.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), staged.len());
        assert_eq!(staged.len(), r.s_recvs.len());
    }
}
