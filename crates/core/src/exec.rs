//! Executing a plan as real persistent communication on `mpisim`.
//!
//! [`PersistentNeighbor`] is the per-rank persistent collective object — the
//! analogue of the request returned by `MPI_Neighbor_alltoallv_init`. All
//! routing (buffer layouts, staging copy maps, request registration) comes
//! from [`RankRouting`] and is fixed at init; each iteration only moves
//! values through `start`/`wait`, exactly as the paper's persistent API
//! prescribes (Algorithms 4–6).
//!
//! # Zero-copy staging
//!
//! The ℓ, s, and r steps run on the buffer-less channel halves: sends
//! gather input values straight into the pre-matched channel's recycled
//! wire buffer, receives scatter straight from the delivered payload. The
//! only registered windows are the inter-region (`g`) send buffers, which
//! all alias **one arena allocation per request**: each s-step receive is
//! registered directly into its partition's window of the arena, so staged
//! values land in the g send buffer with no intermediate `s` buffer and no
//! second copy. On the receive side, `wait` borrows each g payload off the
//! channel, scatters ghost values into the output, feeds the r-step
//! forwards from the same borrowed payload, and recycles it — the
//! intermediate `g` receive window is gone entirely.
//!
//! Construct it through [`crate::NeighborAlltoallv`]; the constructors here
//! are the plumbing under that builder.

use crate::agg::Plan;
use crate::exec_common::{
    register_r_sends, register_recvs, register_sends, RSendExec, RecvExec, SendExec,
};
use crate::pattern::CommPattern;
use crate::routing::{PartSource, RankRouting, RecvRoute};
use mpisim::persistent::shared_buf;
use mpisim::{ChanId, ChanRegistrar, Comm, RankCtx, RecvReq, SendReq, SharedBuf};
use std::ops::Range;

struct GSendExec {
    req: SendReq<f64>,
    /// Partitions fed by this rank's own input:
    /// (arena-absolute slot range, input position per slot).
    input_parts: Vec<(Range<usize>, Vec<usize>)>,
}

/// The persistent neighborhood collective of one rank.
pub struct PersistentNeighbor {
    input_index: Vec<usize>,
    output_index: Vec<usize>,
    local_sends: Vec<SendExec>,
    local_recvs: Vec<RecvExec>,
    s_sends: Vec<SendExec>,
    /// Staging receives registered directly into the g-send arena windows.
    s_recvs: Vec<RecvReq<f64>>,
    /// One allocation backing every g send buffer; s receives alias into it.
    arena: SharedBuf<f64>,
    g_sends: Vec<GSendExec>,
    g_recvs: Vec<RecvExec>,
    r_sends: Vec<RSendExec>,
    r_recvs: Vec<RecvExec>,
    /// Borrowed g payloads of the current iteration, slotted by g receive
    /// (arrival order fills them in any order; the r forwards index by
    /// g-message position). Buffers recycle, so capacity is reused.
    g_payloads: Vec<Option<Vec<f64>>>,
    /// Per-iteration completion state, reset by `start`: which receives of
    /// each step have been drained by `test`.
    local_done: Vec<bool>,
    g_done: Vec<bool>,
    /// The r step opens only after every g payload is in (its forwards
    /// read from them); set by the `test` call that drains the last g.
    r_started: bool,
    r_done: Vec<bool>,
    /// Whole-iteration doneness: `test` is a no-op once set (an inactive
    /// persistent request, in MPI terms).
    done: bool,
}

impl PersistentNeighbor {
    /// Register this rank's requests for `plan` (the analogue of
    /// `MPI_Neighbor_alltoallv_init`). Prefer [`crate::NeighborAlltoallv`],
    /// which plans and selects the protocol for you.
    pub fn from_plan(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");
        let routing = RankRouting::build(pattern, plan, comm.rank(), tag_base);
        Self::from_routing(routing, ctx, comm)
    }

    /// Register requests from a precomputed routing, allocating a private
    /// arena for this request's g sends.
    pub fn from_routing(routing: RankRouting, ctx: &RankCtx, comm: &Comm) -> Self {
        let total: usize = routing.g_sends.iter().map(|g| g.len).sum();
        let arena = shared_buf(vec![0.0f64; total]);
        Self::from_routing_in(routing, &mut ctx.chan_registrar(), comm, arena, 0)
    }

    /// Register requests from a precomputed routing, staging g sends in
    /// `arena[base ..]` — the window a [`crate::NeighborBatch`] carves for
    /// this entry out of the batch-shared arena. All channels resolve
    /// through the caller's held [`ChanRegistrar`], so a batch registers
    /// every entry in a single pass over the registry.
    pub(crate) fn from_routing_in(
        routing: RankRouting,
        reg: &mut ChanRegistrar,
        comm: &Comm,
        arena: SharedBuf<f64>,
        base: usize,
    ) -> Self {
        let local_sends = register_sends(routing.local_sends, reg, comm);
        let local_recvs = register_recvs(routing.local_recvs, reg, comm);
        let s_sends = register_sends(routing.s_sends, reg, comm);

        // this request's g send buffers all live in one window of the
        // (possibly batch-shared) arena
        let offsets: Vec<usize> = routing
            .g_sends
            .iter()
            .scan(base, |off, g| {
                let o = *off;
                *off += g.len;
                Some(o)
            })
            .collect();
        let total: usize = routing.g_sends.iter().map(|g| g.len).sum();
        assert!(
            base + total <= arena.read().len(),
            "arena window {base}..{} out of arena of len {}",
            base + total,
            arena.read().len()
        );

        // s receives alias the arena: each staging message is delivered
        // straight into its g partition's window
        let s_recvs = routing
            .s_recvs
            .into_iter()
            .map(|r| {
                let g = &routing.g_sends[r.g_send];
                let win = offsets[r.g_send] + g.bounds[r.partition];
                // hard check: an oversized staging receive would overrun
                // into the next partition's arena window
                assert_eq!(
                    g.bounds[r.partition + 1] - g.bounds[r.partition],
                    r.len,
                    "staging/partition length mismatch"
                );
                reg.recv_init(comm, r.src, r.tag, arena.clone(), win, r.len)
            })
            .collect();

        let g_sends = routing
            .g_sends
            .into_iter()
            .zip(&offsets)
            .map(|(g, &off)| {
                let req = reg.send_init(comm, g.dst, g.tag, arena.clone(), off, g.len);
                let input_parts = g
                    .parts
                    .into_iter()
                    .filter_map(|part| match part.source {
                        PartSource::Input(positions) => {
                            Some((off + part.range.start..off + part.range.end, positions))
                        }
                        // staged partitions are written by the aliased
                        // s receives; nothing to do at start
                        PartSource::Staged { .. } => None,
                    })
                    .collect();
                GSendExec { req, input_parts }
            })
            .collect();
        let g_recvs = register_recvs(
            routing.g_recvs.into_iter().map(RecvRoute::from).collect(),
            reg,
            comm,
        );
        let r_sends = register_r_sends(routing.r_sends, reg, comm);
        let r_recvs = register_recvs(routing.r_recvs, reg, comm);
        let (n_local, n_g, n_r) = (local_recvs.len(), g_recvs.len(), r_recvs.len());
        Self {
            input_index: routing.input_index,
            output_index: routing.output_index,
            local_sends,
            local_recvs,
            s_sends,
            s_recvs,
            arena,
            g_sends,
            g_recvs,
            r_sends,
            r_recvs,
            g_payloads: (0..n_g).map(|_| None).collect(),
            local_done: vec![false; n_local],
            g_done: vec![false; n_g],
            r_started: false,
            r_done: vec![false; n_r],
            // inactive until the first start: test/wait are no-ops, as on
            // an inactive persistent MPI request
            done: true,
        }
    }

    /// Global indices whose values the caller must provide to
    /// [`PersistentNeighbor::start`], in order.
    pub fn input_index(&self) -> &[usize] {
        &self.input_index
    }

    /// Global indices of the values [`PersistentNeighbor::wait`] produces,
    /// in order.
    pub fn output_index(&self) -> &[usize] {
        &self.output_index
    }

    /// `MPI_Start`: begin one iteration. `input[i]` is the current value of
    /// `input_index()[i]`. Implements Algorithm 5: start ℓ, start+complete
    /// s, start g.
    pub fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        assert_eq!(input.len(), self.input_index.len(), "input length mismatch");

        // fresh iteration: nothing drained yet (a start racing an
        // unfinished iteration trips the receives' double-start assert)
        self.local_done.fill(false);
        self.g_done.fill(false);
        self.r_started = false;
        self.r_done.fill(false);
        self.done = false;

        // ℓ: start sends and receives
        for send in &self.local_sends {
            send.start_gather(ctx, input);
        }
        for recv in &mut self.local_recvs {
            recv.req.start();
        }

        // s: start and complete the initial redistribution — staged values
        // land directly in the aliased g-send arena windows
        for send in &self.s_sends {
            send.start_gather(ctx, input);
        }
        for recv in &mut self.s_recvs {
            recv.start();
            recv.wait(ctx);
        }

        // g: gather this rank's own contributions into the arena, then
        // ship each buffer (staged partitions are already in place)
        for send in &mut self.g_sends {
            if !send.input_parts.is_empty() {
                let mut guard = self.arena.write();
                for (range, positions) in &send.input_parts {
                    for (slot, &p) in guard[range.clone()].iter_mut().zip(positions) {
                        *slot = input[p];
                    }
                }
            }
            send.req.start(ctx);
        }
        for recv in &mut self.g_recvs {
            recv.req.start();
        }
    }

    /// `MPI_Test`: non-blocking progress. Drains every payload that has
    /// been delivered — in arrival order, not posting order — scatters its
    /// ghost values into `output`, advances the ℓ→g→r state machine
    /// (the r forwards fire from the `test` call that drains the last g
    /// payload), and reports whether the whole iteration has completed.
    /// Once complete, further calls are no-ops returning `true` (an
    /// inactive persistent request).
    pub fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        assert_eq!(
            output.len(),
            self.output_index.len(),
            "output length mismatch"
        );
        if self.done {
            return true;
        }

        for (recv, done) in self.local_recvs.iter_mut().zip(&mut self.local_done) {
            if !*done {
                *done = recv.try_scatter(ctx, output);
            }
        }

        // g: borrow each delivered payload off its channel, scatter the
        // slots that terminate here, and keep the payload for the r
        // forwards
        for ((recv, done), slot) in self
            .g_recvs
            .iter_mut()
            .zip(&mut self.g_done)
            .zip(&mut self.g_payloads)
        {
            if *done {
                continue;
            }
            if let Some(data) = recv.req.try_take(ctx) {
                for &(pos, out) in &recv.outputs {
                    output[out] = data[pos];
                }
                *slot = Some(data);
                *done = true;
            }
        }

        // r: opens once every g payload is in (each forward may read from
        // any of them); the borrowed payloads are recycled afterwards
        if !self.r_started && self.g_done.iter().all(|&d| d) {
            let payloads = &self.g_payloads;
            for send in &self.r_sends {
                send.start_gather_from(ctx, |g_msg, pos| {
                    payloads[g_msg].as_ref().expect("g payload drained")[pos]
                });
            }
            for (recv, slot) in self.g_recvs.iter().zip(&mut self.g_payloads) {
                if let Some(data) = slot.take() {
                    recv.req.recycle(data);
                }
            }
            for recv in &mut self.r_recvs {
                recv.req.start();
            }
            self.r_started = true;
        }
        if self.r_started {
            for (recv, done) in self.r_recvs.iter_mut().zip(&mut self.r_done) {
                if !*done {
                    *done = recv.try_scatter(ctx, output);
                }
            }
        }

        self.done =
            self.r_started && self.local_done.iter().all(|&d| d) && self.r_done.iter().all(|&d| d);
        self.done
    }

    /// Append a [`ChanId`] for every receive the current iteration is
    /// still blocked on — the set a caller parks on between `test` calls.
    /// Receives of the not-yet-opened r step are excluded: they cannot be
    /// necessary before the g payloads land (and `test` opens them then).
    pub fn pending_chans(&self, out: &mut Vec<ChanId>) {
        for (recv, done) in self.local_recvs.iter().zip(&self.local_done) {
            if !done {
                out.push(recv.req.chan_id());
            }
        }
        for (recv, done) in self.g_recvs.iter().zip(&self.g_done) {
            if !done {
                out.push(recv.req.chan_id());
            }
        }
        if self.r_started {
            for (recv, done) in self.r_recvs.iter().zip(&self.r_done) {
                if !done {
                    out.push(recv.req.chan_id());
                }
            }
        }
    }

    /// `MPI_Wait`: complete the iteration, writing ghost values into
    /// `output` (aligned with `output_index()`). Loops [`test`] — so
    /// payloads drain in delivery order — parking (bounded spin, then
    /// futex park) on **one necessary channel** between rounds: `wait`
    /// must complete *every* receive, so blocking on the first pending one
    /// never waits for anything the iteration does not need, and it skips
    /// the set-attach machinery [`crate::BatchRequest::wait_any`] pays for
    /// genuine any-of-N completion.
    ///
    /// [`test`]: PersistentNeighbor::test
    pub fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        while !self.test(ctx, output) {
            self.park_on_necessary(ctx);
        }
    }

    /// Block until the first still-pending receive of the current phase
    /// has a delivered message (without consuming it). No-op if nothing is
    /// pending — the next `test` then advances a phase or completes.
    fn park_on_necessary(&self, ctx: &RankCtx) {
        fn pending<'a>(recvs: &'a [RecvExec], done: &[bool]) -> Option<&'a RecvExec> {
            recvs.iter().zip(done).find_map(|(r, &d)| (!d).then_some(r))
        }
        if let Some(recv) = pending(&self.local_recvs, &self.local_done)
            .or_else(|| pending(&self.g_recvs, &self.g_done))
            .or_else(|| {
                self.r_started
                    .then(|| pending(&self.r_recvs, &self.r_done))
                    .flatten()
            })
        {
            recv.req.wait_ready(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use locality::Topology;
    use mpisim::World;

    /// Run `protocol` on `pattern` with input value `10·index + rank_salt`
    /// and check every ghost value arrives correctly, over several
    /// iterations with changing values.
    fn roundtrip(pattern: &CommPattern, topo: &Topology, protocol: Protocol) {
        let n = pattern.n_ranks;
        let plan = protocol.plan(pattern, topo);
        let results = World::run(n, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PersistentNeighbor::from_plan(pattern, &plan, ctx, &comm, 100);
            let mut got = Vec::new();
            for it in 0..3u64 {
                let input: Vec<f64> = nb
                    .input_index()
                    .iter()
                    .map(|&i| (10 * i + it as usize) as f64)
                    .collect();
                let mut output = vec![f64::NAN; nb.output_index().len()];
                nb.start(ctx, &input);
                nb.wait(ctx, &mut output);
                got.push((nb.output_index().to_vec(), output));
            }
            got
        });
        for (rank, iters) in results.iter().enumerate() {
            for (it, (idx, vals)) in iters.iter().enumerate() {
                assert_eq!(idx, &pattern.dst_indices(rank));
                for (&i, &v) in idx.iter().zip(vals) {
                    assert_eq!(
                        v,
                        (10 * i + it) as f64,
                        "rank {rank} iter {it} index {i} ({protocol})"
                    );
                }
            }
        }
    }

    #[test]
    fn example_2_1_all_protocols_deliver() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn bidirectional_pattern_all_protocols() {
        // two regions exchanging in both directions plus local traffic
        let pattern = CommPattern::new(
            8,
            vec![
                vec![(1, vec![0]), (5, vec![0, 1])],
                vec![(4, vec![10]), (6, vec![11])],
                vec![(7, vec![20, 21])],
                vec![],
                vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
                vec![(6, vec![50])],
                vec![(3, vec![60]), (0, vec![61])],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn empty_pattern_is_a_noop() {
        let pattern = CommPattern::empty(4);
        let topo = Topology::block_nodes(4, 2);
        roundtrip(&pattern, &topo, Protocol::FullNeighbor);
    }

    #[test]
    fn three_regions_with_dedup() {
        // value fanned out to many destinations across several regions
        let pattern = CommPattern::new(
            12,
            vec![
                vec![
                    (4, vec![7]),
                    (5, vec![7]),
                    (6, vec![7]),
                    (8, vec![7]),
                    (11, vec![7]),
                ],
                vec![(0, vec![13])],
                vec![],
                vec![],
                vec![(8, vec![42]), (9, vec![42]), (10, vec![42, 43])],
                vec![],
                vec![],
                vec![],
                vec![(0, vec![80]), (1, vec![80, 81]), (2, vec![82])],
                vec![],
                vec![],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(12, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn two_collectives_coexist_via_tag_base() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan_a = Protocol::StandardNeighbor.plan(&pattern, &topo);
        let plan_b = Protocol::FullNeighbor.plan(&pattern, &topo);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut a = PersistentNeighbor::from_plan(&pattern, &plan_a, ctx, &comm, 0);
            let mut b = PersistentNeighbor::from_plan(&pattern, &plan_b, ctx, &comm, 1 << 20);
            let input_a: Vec<f64> = a.input_index().iter().map(|&i| i as f64).collect();
            let input_b: Vec<f64> = b.input_index().iter().map(|&i| 1000.0 + i as f64).collect();
            let mut out_a = vec![0.0; a.output_index().len()];
            let mut out_b = vec![0.0; b.output_index().len()];
            // interleave the two collectives
            a.start(ctx, &input_a);
            b.start(ctx, &input_b);
            b.wait(ctx, &mut out_b);
            a.wait(ctx, &mut out_a);
            let ok_a = a
                .output_index()
                .iter()
                .zip(&out_a)
                .all(|(&i, &v)| v == i as f64);
            let ok_b = b
                .output_index()
                .iter()
                .zip(&out_b)
                .all(|(&i, &v)| v == 1000.0 + i as f64);
            ok_a && ok_b
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn pooled_world_reuses_collectives_across_patterns() {
        // one warm pool drives two different patterns in sequence — the
        // steady-state shape the benches and the AMG driver rely on
        let pool = World::pool(8);
        let topo = Topology::block_nodes(8, 4);
        for pattern in [
            CommPattern::example_2_1(),
            CommPattern::new(
                8,
                vec![
                    vec![(1, vec![0]), (5, vec![0, 1])],
                    vec![(4, vec![10]), (6, vec![11])],
                    vec![(7, vec![20, 21])],
                    vec![],
                    vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
                    vec![(6, vec![50])],
                    vec![(3, vec![60]), (0, vec![61])],
                    vec![],
                ],
            ),
        ] {
            let plan = Protocol::FullNeighbor.plan(&pattern, &topo);
            let results = pool.run(|ctx| {
                let comm = ctx.comm_world();
                let mut nb = PersistentNeighbor::from_plan(&pattern, &plan, ctx, &comm, 100);
                let mut got = Vec::new();
                for it in 0..5u64 {
                    let input: Vec<f64> = nb
                        .input_index()
                        .iter()
                        .map(|&i| (10 * i + it as usize) as f64)
                        .collect();
                    let mut output = vec![f64::NAN; nb.output_index().len()];
                    nb.start(ctx, &input);
                    nb.wait(ctx, &mut output);
                    got.push(output);
                }
                got
            });
            for (rank, iters) in results.iter().enumerate() {
                let idx = pattern.dst_indices(rank);
                for (it, vals) in iters.iter().enumerate() {
                    for (&i, &v) in idx.iter().zip(vals) {
                        assert_eq!(v, (10 * i + it) as f64, "rank {rank} iter {it} index {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn test_on_an_inactive_request_is_a_noop_true() {
        // before the first start — and after an iteration completes — the
        // request is inactive: test must report done without touching any
        // receive (MPI_Test on an inactive persistent request)
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan = Protocol::FullNeighbor.plan(&pattern, &topo);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PersistentNeighbor::from_plan(&pattern, &plan, ctx, &comm, 100);
            let mut output = vec![f64::NAN; nb.output_index().len()];
            let before = nb.test(ctx, &mut output);
            let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
            nb.start(ctx, &input);
            nb.wait(ctx, &mut output);
            before && nb.test(ctx, &mut output)
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "plan/communicator size mismatch")]
    fn pooled_world_rank_count_mismatch_panics() {
        // a plan for 8 ranks initialized on a 4-rank pool must fail loudly
        let pool = World::pool(4);
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan = Protocol::FullNeighbor.plan(&pattern, &topo);
        pool.run(|ctx| {
            let comm = ctx.comm_world();
            let _ = PersistentNeighbor::from_plan(&pattern, &plan, ctx, &comm, 0);
        });
    }
}
