//! Executing a plan as real persistent communication on `mpisim`.
//!
//! [`PersistentNeighbor`] is the per-rank persistent collective object — the
//! analogue of the request returned by `MPI_Neighbor_alltoallv_init`. All
//! routing (buffer layouts, staging copy maps, request registration) comes
//! from [`RankRouting`] and is fixed at init; each iteration only moves
//! values through `start`/`wait`, exactly as the paper's persistent API
//! prescribes (Algorithms 4–6).
//!
//! Construct it through [`crate::NeighborAlltoallv`]; the constructors here
//! are the plumbing under that builder.

use crate::agg::Plan;
use crate::exec_common::{
    deliver, fill_from_input, register_r_sends, register_recvs, register_sends, RSendExec,
    RecvExec, SendExec,
};
use crate::pattern::CommPattern;
use crate::routing::{GPartRoute, PartSource, RankRouting, RecvRoute};
use mpisim::persistent::shared_buf;
use mpisim::{Comm, RankCtx, SendReq, SharedBuf};

struct GSendExec {
    req: SendReq<f64>,
    buf: SharedBuf<f64>,
    parts: Vec<GPartRoute>,
}

/// The persistent neighborhood collective of one rank.
pub struct PersistentNeighbor {
    input_index: Vec<usize>,
    output_index: Vec<usize>,
    local_sends: Vec<SendExec>,
    local_recvs: Vec<RecvExec>,
    s_sends: Vec<SendExec>,
    s_recvs: Vec<RecvExec>,
    g_sends: Vec<GSendExec>,
    g_recvs: Vec<RecvExec>,
    r_sends: Vec<RSendExec>,
    r_recvs: Vec<RecvExec>,
}

impl PersistentNeighbor {
    /// Register this rank's requests for `plan` (the analogue of
    /// `MPI_Neighbor_alltoallv_init`). Prefer [`crate::NeighborAlltoallv`],
    /// which plans and selects the protocol for you.
    pub fn from_plan(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");
        let routing = RankRouting::build(pattern, plan, comm.rank(), tag_base);
        Self::from_routing(routing, ctx, comm)
    }

    /// Register requests from a precomputed routing.
    pub fn from_routing(routing: RankRouting, ctx: &RankCtx, comm: &Comm) -> Self {
        let local_sends = register_sends(routing.local_sends, ctx, comm);
        let local_recvs = register_recvs(routing.local_recvs, ctx, comm);
        let s_sends = register_sends(routing.s_sends, ctx, comm);
        let s_recvs = register_recvs(
            routing.s_recvs.into_iter().map(RecvRoute::from).collect(),
            ctx,
            comm,
        );
        let g_sends = routing
            .g_sends
            .into_iter()
            .map(|g| {
                let buf = shared_buf(vec![0.0f64; g.len]);
                let req = ctx.send_init(comm, g.dst, g.tag, buf.clone(), 0, g.len);
                GSendExec {
                    req,
                    buf,
                    parts: g.parts,
                }
            })
            .collect();
        // the plain executor ships g messages whole: bounds are unused
        let g_recvs = register_recvs(
            routing.g_recvs.into_iter().map(RecvRoute::from).collect(),
            ctx,
            comm,
        );
        let r_sends = register_r_sends(routing.r_sends, ctx, comm);
        let r_recvs = register_recvs(routing.r_recvs, ctx, comm);
        Self {
            input_index: routing.input_index,
            output_index: routing.output_index,
            local_sends,
            local_recvs,
            s_sends,
            s_recvs,
            g_sends,
            g_recvs,
            r_sends,
            r_recvs,
        }
    }

    /// Deprecated name of [`PersistentNeighbor::from_plan`].
    #[deprecated(since = "0.1.0", note = "use NeighborAlltoallv or from_plan")]
    pub fn init(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        Self::from_plan(pattern, plan, ctx, comm, tag_base)
    }

    /// Global indices whose values the caller must provide to
    /// [`PersistentNeighbor::start`], in order.
    pub fn input_index(&self) -> &[usize] {
        &self.input_index
    }

    /// Global indices of the values [`PersistentNeighbor::wait`] produces,
    /// in order.
    pub fn output_index(&self) -> &[usize] {
        &self.output_index
    }

    /// `MPI_Start`: begin one iteration. `input[i]` is the current value of
    /// `input_index()[i]`. Implements Algorithm 5: start ℓ, start+complete
    /// s, start g.
    pub fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        assert_eq!(input.len(), self.input_index.len(), "input length mismatch");

        // ℓ: start sends and receives
        for send in &mut self.local_sends {
            fill_from_input(&send.buf, &send.sources, input);
            send.req.start(ctx);
        }
        for recv in &mut self.local_recvs {
            recv.req.start();
        }

        // s: start and complete the initial redistribution
        for send in &mut self.s_sends {
            fill_from_input(&send.buf, &send.sources, input);
            send.req.start(ctx);
        }
        for recv in &mut self.s_recvs {
            recv.req.start();
            recv.req.wait(ctx);
        }

        // g: forward staged + owned values across regions
        for send in &mut self.g_sends {
            {
                let mut guard = send.buf.write();
                for part in &send.parts {
                    match &part.source {
                        PartSource::Input(positions) => {
                            for (slot, &p) in guard[part.range.clone()].iter_mut().zip(positions) {
                                *slot = input[p];
                            }
                        }
                        PartSource::Staged { s_recv } => {
                            let staged = self.s_recvs[*s_recv].buf.read();
                            guard[part.range.clone()].clone_from_slice(&staged);
                        }
                    }
                }
            }
            send.req.start(ctx);
        }
        for recv in &mut self.g_recvs {
            recv.req.start();
        }
    }

    /// `MPI_Wait`: complete the iteration, writing ghost values into
    /// `output` (aligned with `output_index()`). Implements Algorithm 6:
    /// complete ℓ, complete g, start+complete r.
    pub fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        assert_eq!(
            output.len(),
            self.output_index.len(),
            "output length mismatch"
        );

        for recv in &mut self.local_recvs {
            recv.req.wait(ctx);
            deliver(&recv.buf, &recv.outputs, output);
        }

        for recv in &mut self.g_recvs {
            recv.req.wait(ctx);
            deliver(&recv.buf, &recv.outputs, output);
        }

        // r: forward from g buffers to final destinations, holding one
        // read guard per g buffer across all forwards
        let g_bufs: Vec<_> = self.g_recvs.iter().map(|g| g.buf.read()).collect();
        for send in &mut self.r_sends {
            {
                let mut guard = send.buf.write();
                for (slot, &(g_msg, pos)) in guard.iter_mut().zip(&send.sources) {
                    *slot = g_bufs[g_msg][pos];
                }
            }
            send.req.start(ctx);
        }
        drop(g_bufs);
        for recv in &mut self.r_recvs {
            recv.req.start();
            recv.req.wait(ctx);
            deliver(&recv.buf, &recv.outputs, output);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use locality::Topology;
    use mpisim::World;

    /// Run `protocol` on `pattern` with input value `10·index + rank_salt`
    /// and check every ghost value arrives correctly, over several
    /// iterations with changing values.
    fn roundtrip(pattern: &CommPattern, topo: &Topology, protocol: Protocol) {
        let n = pattern.n_ranks;
        let plan = protocol.plan(pattern, topo);
        let results = World::run(n, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PersistentNeighbor::from_plan(pattern, &plan, ctx, &comm, 100);
            let mut got = Vec::new();
            for it in 0..3u64 {
                let input: Vec<f64> = nb
                    .input_index()
                    .iter()
                    .map(|&i| (10 * i + it as usize) as f64)
                    .collect();
                let mut output = vec![f64::NAN; nb.output_index().len()];
                nb.start(ctx, &input);
                nb.wait(ctx, &mut output);
                got.push((nb.output_index().to_vec(), output));
            }
            got
        });
        for (rank, iters) in results.iter().enumerate() {
            for (it, (idx, vals)) in iters.iter().enumerate() {
                assert_eq!(idx, &pattern.dst_indices(rank));
                for (&i, &v) in idx.iter().zip(vals) {
                    assert_eq!(
                        v,
                        (10 * i + it) as f64,
                        "rank {rank} iter {it} index {i} ({protocol})"
                    );
                }
            }
        }
    }

    #[test]
    fn example_2_1_all_protocols_deliver() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn bidirectional_pattern_all_protocols() {
        // two regions exchanging in both directions plus local traffic
        let pattern = CommPattern::new(
            8,
            vec![
                vec![(1, vec![0]), (5, vec![0, 1])],
                vec![(4, vec![10]), (6, vec![11])],
                vec![(7, vec![20, 21])],
                vec![],
                vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
                vec![(6, vec![50])],
                vec![(3, vec![60]), (0, vec![61])],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn empty_pattern_is_a_noop() {
        let pattern = CommPattern::empty(4);
        let topo = Topology::block_nodes(4, 2);
        roundtrip(&pattern, &topo, Protocol::FullNeighbor);
    }

    #[test]
    fn three_regions_with_dedup() {
        // value fanned out to many destinations across several regions
        let pattern = CommPattern::new(
            12,
            vec![
                vec![
                    (4, vec![7]),
                    (5, vec![7]),
                    (6, vec![7]),
                    (8, vec![7]),
                    (11, vec![7]),
                ],
                vec![(0, vec![13])],
                vec![],
                vec![],
                vec![(8, vec![42]), (9, vec![42]), (10, vec![42, 43])],
                vec![],
                vec![],
                vec![],
                vec![(0, vec![80]), (1, vec![80, 81]), (2, vec![82])],
                vec![],
                vec![],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(12, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn two_collectives_coexist_via_tag_base() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan_a = Protocol::StandardNeighbor.plan(&pattern, &topo);
        let plan_b = Protocol::FullNeighbor.plan(&pattern, &topo);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut a = PersistentNeighbor::from_plan(&pattern, &plan_a, ctx, &comm, 0);
            let mut b = PersistentNeighbor::from_plan(&pattern, &plan_b, ctx, &comm, 1 << 20);
            let input_a: Vec<f64> = a.input_index().iter().map(|&i| i as f64).collect();
            let input_b: Vec<f64> = b.input_index().iter().map(|&i| 1000.0 + i as f64).collect();
            let mut out_a = vec![0.0; a.output_index().len()];
            let mut out_b = vec![0.0; b.output_index().len()];
            // interleave the two collectives
            a.start(ctx, &input_a);
            b.start(ctx, &input_b);
            b.wait(ctx, &mut out_b);
            a.wait(ctx, &mut out_a);
            let ok_a = a
                .output_index()
                .iter()
                .zip(&out_a)
                .all(|(&i, &v)| v == i as f64);
            let ok_b = b
                .output_index()
                .iter()
                .zip(&out_b)
                .all(|(&i, &v)| v == 1000.0 + i as f64);
            ok_a && ok_b
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn deprecated_init_shim_still_works() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan = Protocol::FullNeighbor.plan(&pattern, &topo);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            #[allow(deprecated)]
            let mut nb = PersistentNeighbor::init(&pattern, &plan, ctx, &comm, 0);
            let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
            let mut output = vec![0.0; nb.output_index().len()];
            nb.start(ctx, &input);
            nb.wait(ctx, &mut output);
            nb.output_index()
                .iter()
                .zip(&output)
                .all(|(&i, &v)| v == i as f64)
        });
        assert!(ok.into_iter().all(|b| b));
    }
}
