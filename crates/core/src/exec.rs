//! Executing a plan as real persistent communication on `mpisim`.
//!
//! [`PersistentNeighbor`] is the per-rank persistent collective object — the
//! analogue of the request returned by `MPI_Neighbor_alltoallv_init`. All
//! routing (buffer layouts, staging copy maps, request registration) is
//! fixed at [`PersistentNeighbor::init`]; each iteration only moves values
//! through [`PersistentNeighbor::start`] / [`PersistentNeighbor::wait`],
//! exactly as the paper's persistent API prescribes (Algorithms 4–6).

use crate::agg::{Plan, PlanMsg};
use crate::pattern::CommPattern;
use mpisim::persistent::shared_buf;
use mpisim::{Comm, RankCtx, RecvReq, SendReq, SharedBuf};
use std::collections::HashMap;

/// Where a send-buffer slot gets its value from when (re)starting.
#[derive(Debug, Clone, Copy)]
enum SlotSource {
    /// `input[pos]` — a value this rank owns.
    Input(usize),
    /// Slot `pos` of the `msg`-th s-step receive buffer (sending leader
    /// forwarding staged data).
    SRecv { msg: usize, pos: usize },
    /// Slot `pos` of the `msg`-th g-step receive buffer (receiving leader
    /// forwarding inter-region data).
    GRecv { msg: usize, pos: usize },
}

struct SendExec {
    req: SendReq<f64>,
    buf: SharedBuf<f64>,
    sources: Vec<SlotSource>,
}

struct RecvExec {
    req: RecvReq<f64>,
    buf: SharedBuf<f64>,
    /// `(slot position, output position)` pairs delivered here.
    outputs: Vec<(usize, usize)>,
}

#[derive(Default)]
struct StepExec {
    sends: Vec<SendExec>,
    recvs: Vec<RecvExec>,
}

/// The persistent neighborhood collective of one rank.
pub struct PersistentNeighbor {
    me: usize,
    input_index: Vec<usize>,
    output_index: Vec<usize>,
    local: StepExec,
    s: StepExec,
    g: StepExec,
    r: StepExec,
}

/// Tag layout: `tag_base + step*4096 + seq`, where `seq` disambiguates
/// multiple messages between the same rank pair within a step (e.g. one s
/// message per region pair). Both sides derive `seq` from the shared plan
/// order, so matching is unambiguous.
const STEP_TAG_STRIDE: u64 = 4096;

fn msg_tags(msgs: &[PlanMsg], step: u64, tag_base: u64) -> Vec<u64> {
    let mut pair_seq: HashMap<(usize, usize), u64> = HashMap::new();
    msgs.iter()
        .map(|m| {
            let seq = pair_seq.entry((m.src, m.dst)).or_insert(0);
            let tag = tag_base + step * STEP_TAG_STRIDE + *seq;
            *seq += 1;
            tag
        })
        .collect()
}

impl PersistentNeighbor {
    /// Initialize the persistent collective for this rank (the analogue of
    /// `MPI_Neighbor_alltoallv_init`). Every rank must construct the *same*
    /// `pattern`/`plan` (deterministic planning makes this trivially true).
    ///
    /// `tag_base` isolates concurrent collectives on the same communicator;
    /// use a distinct base per persistent object (e.g. per AMG level).
    pub fn init(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        let me = comm.rank();
        assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");

        let input_index = pattern.src_indices(me);
        let output_index = pattern.dst_indices(me);
        let in_pos: HashMap<usize, usize> =
            input_index.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        let out_pos: HashMap<usize, usize> =
            output_index.iter().enumerate().map(|(p, &i)| (i, p)).collect();

        // Staging maps filled while registering receives:
        //   s-recv: (origin, index, first final dst) → (msg, pos)
        //   g-recv: (index, final dst)               → (msg, pos)
        let mut s_map: HashMap<(usize, usize, usize), SlotSource> = HashMap::new();
        let mut g_map: HashMap<(usize, usize), SlotSource> = HashMap::new();

        let make_step = |msgs: &[PlanMsg],
                         step_id: u64,
                         ctx: &RankCtx,
                         s_map: &mut HashMap<(usize, usize, usize), SlotSource>,
                         g_map: &mut HashMap<(usize, usize), SlotSource>,
                         in_pos: &HashMap<usize, usize>,
                         out_pos: &HashMap<usize, usize>|
         -> StepExec {
            let tags = msg_tags(msgs, step_id, tag_base);
            let mut step = StepExec::default();
            for (m, &tag) in msgs.iter().zip(&tags) {
                if m.src == me {
                    let buf = shared_buf(vec![0.0f64; m.slots.len()]);
                    let sources = m
                        .slots
                        .iter()
                        .map(|slot| {
                            if slot.origin == me {
                                SlotSource::Input(in_pos[&slot.index])
                            } else if step_id == 2 {
                                // g send forwarding staged s data
                                s_map[&(slot.origin, slot.index, slot.final_dsts[0])]
                            } else if step_id == 3 {
                                // r send forwarding g data
                                g_map[&(slot.index, m.dst)]
                            } else {
                                panic!(
                                    "rank {me}: step {step_id} send slot with foreign origin {}",
                                    slot.origin
                                );
                            }
                        })
                        .collect();
                    let req = ctx.send_init(&comm.clone(), m.dst, tag, buf.clone(), 0, m.slots.len());
                    step.sends.push(SendExec { req, buf, sources });
                }
                if m.dst == me {
                    let buf = shared_buf(vec![0.0f64; m.slots.len()]);
                    let req = ctx.recv_init(&comm.clone(), m.src, tag, buf.clone(), 0, m.slots.len());
                    let msg_idx = step.recvs.len();
                    let mut outputs = Vec::new();
                    for (pos, slot) in m.slots.iter().enumerate() {
                        match step_id {
                            0 => outputs.push((pos, out_pos[&slot.index])),
                            1 => {
                                s_map.insert(
                                    (slot.origin, slot.index, slot.final_dsts[0]),
                                    SlotSource::SRecv { msg: msg_idx, pos },
                                );
                            }
                            2 => {
                                for &fd in &slot.final_dsts {
                                    if fd == me {
                                        outputs.push((pos, out_pos[&slot.index]));
                                    } else {
                                        g_map.insert(
                                            (slot.index, fd),
                                            SlotSource::GRecv { msg: msg_idx, pos },
                                        );
                                    }
                                }
                            }
                            3 => outputs.push((pos, out_pos[&slot.index])),
                            _ => unreachable!(),
                        }
                    }
                    step.recvs.push(RecvExec { req, buf, outputs });
                }
            }
            step
        };

        // order matters: s before g (fills s_map), g before r (fills g_map)
        let local = make_step(&plan.local, 0, ctx, &mut s_map, &mut g_map, &in_pos, &out_pos);
        let s = make_step(&plan.s_step, 1, ctx, &mut s_map, &mut g_map, &in_pos, &out_pos);
        let g = make_step(&plan.g_step, 2, ctx, &mut s_map, &mut g_map, &in_pos, &out_pos);
        let r = make_step(&plan.r_step, 3, ctx, &mut s_map, &mut g_map, &in_pos, &out_pos);

        Self { me, input_index, output_index, local, s, g, r }
    }

    /// Global indices whose values the caller must provide to
    /// [`PersistentNeighbor::start`], in order.
    pub fn input_index(&self) -> &[usize] {
        &self.input_index
    }

    /// Global indices of the values [`PersistentNeighbor::wait`] produces,
    /// in order.
    pub fn output_index(&self) -> &[usize] {
        &self.output_index
    }

    /// `MPI_Start`: begin one iteration. `input[i]` is the current value of
    /// `input_index()[i]`. Implements Algorithm 5: start ℓ, start+complete
    /// s, start g.
    pub fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        assert_eq!(input.len(), self.input_index.len(), "input length mismatch");

        // ℓ: start sends and receives
        for send in &mut self.local.sends {
            let mut guard = send.buf.write();
            for (slot, src) in guard.iter_mut().zip(&send.sources) {
                match *src {
                    SlotSource::Input(p) => *slot = input[p],
                    _ => unreachable!("local sends only carry owned values"),
                }
            }
            drop(guard);
            send.req.start(ctx);
        }
        for recv in &mut self.local.recvs {
            recv.req.start();
        }

        // s: start and complete the initial redistribution
        for send in &mut self.s.sends {
            let mut guard = send.buf.write();
            for (slot, src) in guard.iter_mut().zip(&send.sources) {
                match *src {
                    SlotSource::Input(p) => *slot = input[p],
                    _ => unreachable!("s sends only carry owned values"),
                }
            }
            drop(guard);
            send.req.start(ctx);
        }
        for recv in &mut self.s.recvs {
            recv.req.start();
            recv.req.wait(ctx);
        }

        // g: forward staged + owned values across regions
        {
            let s_ref = &self.s;
            for send in &mut self.g.sends {
                let mut guard = send.buf.write();
                for (slot, src) in guard.iter_mut().zip(&send.sources) {
                    *slot = match *src {
                        SlotSource::Input(p) => input[p],
                        SlotSource::SRecv { msg, pos } => s_ref.recvs[msg].buf.read()[pos],
                        SlotSource::GRecv { .. } => {
                            unreachable!("g sends never source from g receives")
                        }
                    };
                }
            }
        }
        for send in &mut self.g.sends {
            send.req.start(ctx);
        }
        for recv in &mut self.g.recvs {
            recv.req.start();
        }
    }

    /// `MPI_Wait`: complete the iteration, writing ghost values into
    /// `output` (aligned with `output_index()`). Implements Algorithm 6:
    /// complete ℓ, complete g, start+complete r.
    pub fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        assert_eq!(output.len(), self.output_index.len(), "output length mismatch");

        for recv in &mut self.local.recvs {
            recv.req.wait(ctx);
            let guard = recv.buf.read();
            for &(pos, out) in &recv.outputs {
                output[out] = guard[pos];
            }
        }

        for recv in &mut self.g.recvs {
            recv.req.wait(ctx);
            let guard = recv.buf.read();
            for &(pos, out) in &recv.outputs {
                output[out] = guard[pos];
            }
        }

        // r: forward from g buffers to final destinations
        {
            let g_ref = &self.g;
            for send in &mut self.r.sends {
                let mut guard = send.buf.write();
                for (slot, src) in guard.iter_mut().zip(&send.sources) {
                    *slot = match *src {
                        SlotSource::GRecv { msg, pos } => g_ref.recvs[msg].buf.read()[pos],
                        _ => unreachable!("r sends only forward g data"),
                    };
                }
            }
        }
        for send in &mut self.r.sends {
            send.req.start(ctx);
        }
        for recv in &mut self.r.recvs {
            recv.req.start();
            recv.req.wait(ctx);
            let guard = recv.buf.read();
            for &(pos, out) in &recv.outputs {
                output[out] = guard[pos];
            }
        }
        let _ = self.me;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use locality::Topology;
    use mpisim::World;

    /// Run `protocol` on `pattern` with input value `10·index + rank_salt`
    /// and check every ghost value arrives correctly, over several
    /// iterations with changing values.
    fn roundtrip(pattern: &CommPattern, topo: &Topology, protocol: Protocol) {
        let n = pattern.n_ranks;
        let plan = protocol.plan(pattern, topo);
        let results = World::run(n, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PersistentNeighbor::init(pattern, &plan, ctx, &comm, 100);
            let mut got = Vec::new();
            for it in 0..3u64 {
                let input: Vec<f64> = nb
                    .input_index()
                    .iter()
                    .map(|&i| (10 * i + it as usize) as f64)
                    .collect();
                let mut output = vec![f64::NAN; nb.output_index().len()];
                nb.start(ctx, &input);
                nb.wait(ctx, &mut output);
                got.push((nb.output_index().to_vec(), output));
            }
            got
        });
        for (rank, iters) in results.iter().enumerate() {
            for (it, (idx, vals)) in iters.iter().enumerate() {
                assert_eq!(idx, &pattern.dst_indices(rank));
                for (&i, &v) in idx.iter().zip(vals) {
                    assert_eq!(
                        v,
                        (10 * i + it) as f64,
                        "rank {rank} iter {it} index {i} ({protocol})"
                    );
                }
            }
        }
    }

    #[test]
    fn example_2_1_all_protocols_deliver() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn bidirectional_pattern_all_protocols() {
        // two regions exchanging in both directions plus local traffic
        let pattern = CommPattern::new(
            8,
            vec![
                vec![(1, vec![0]), (5, vec![0, 1])],
                vec![(4, vec![10]), (6, vec![11])],
                vec![(7, vec![20, 21])],
                vec![],
                vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
                vec![(6, vec![50])],
                vec![(3, vec![60]), (0, vec![61])],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(8, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn empty_pattern_is_a_noop() {
        let pattern = CommPattern::empty(4);
        let topo = Topology::block_nodes(4, 2);
        roundtrip(&pattern, &topo, Protocol::FullNeighbor);
    }

    #[test]
    fn three_regions_with_dedup() {
        // value fanned out to many destinations across several regions
        let pattern = CommPattern::new(
            12,
            vec![
                vec![(4, vec![7]), (5, vec![7]), (6, vec![7]), (8, vec![7]), (11, vec![7])],
                vec![(0, vec![13])],
                vec![],
                vec![],
                vec![(8, vec![42]), (9, vec![42]), (10, vec![42, 43])],
                vec![],
                vec![],
                vec![],
                vec![(0, vec![80]), (1, vec![80, 81]), (2, vec![82])],
                vec![],
                vec![],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(12, 4);
        for protocol in Protocol::ALL {
            roundtrip(&pattern, &topo, protocol);
        }
    }

    #[test]
    fn two_collectives_coexist_via_tag_base() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let plan_a = Protocol::StandardNeighbor.plan(&pattern, &topo);
        let plan_b = Protocol::FullNeighbor.plan(&pattern, &topo);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut a = PersistentNeighbor::init(&pattern, &plan_a, ctx, &comm, 0);
            let mut b =
                PersistentNeighbor::init(&pattern, &plan_b, ctx, &comm, 1 << 20);
            let input_a: Vec<f64> = a.input_index().iter().map(|&i| i as f64).collect();
            let input_b: Vec<f64> =
                b.input_index().iter().map(|&i| 1000.0 + i as f64).collect();
            let mut out_a = vec![0.0; a.output_index().len()];
            let mut out_b = vec![0.0; b.output_index().len()];
            // interleave the two collectives
            a.start(ctx, &input_a);
            b.start(ctx, &input_b);
            b.wait(ctx, &mut out_b);
            a.wait(ctx, &mut out_a);
            let ok_a = a.output_index().iter().zip(&out_a).all(|(&i, &v)| v == i as f64);
            let ok_b =
                b.output_index().iter().zip(&out_b).all(|(&i, &v)| v == 1000.0 + i as f64);
            ok_a && ok_b
        });
        assert!(ok.into_iter().all(|b| b));
    }
}
