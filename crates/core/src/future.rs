//! Hand-rolled futures over the fabric: `Future`-shaped neighbor
//! exchanges and the per-rank progress driver that parks them.
//!
//! PR 5 made every request a resumable poll (`NeighborRequest::test`) and
//! exposed its wake set (`pending_chans`), so a future-returning lifecycle
//! is a thin wrapper: **poll = `test`**, **waker = the per-rank
//! `WaitSet`**. This module supplies that wrapper with no executor crate
//! (no tokio — the vendored-deps constraint):
//!
//! * [`NeighborFuture`] / [`BatchFuture`] / [`EntryFuture`] implement
//!   [`std::future::Future`] over a request or a whole batch session;
//! * [`ProgressDriver`] is a single-threaded per-rank executor: it polls
//!   runnable tasks, collects each pending task's watched channels, parks
//!   **once** on the union via [`RankCtx::wait_any`] (whose generation
//!   check closes the scan-then-park race, so a delivery between a
//!   future's poll and the park is never lost), and wakes **exactly the
//!   tasks whose watched channels delivered**;
//! * [`block_on`] drives one future to completion on the calling rank;
//! * [`CatchPanic`] contains a panic inside one task's poll so a
//!   multi-tenant scheduler can fail that task alone (see
//!   `crates/service`).
//!
//! Rank context plumbing: `Future::poll` only receives a
//! [`std::task::Context`], but every transport verb needs `&mut RankCtx`.
//! The driver therefore installs the rank context (and the polled task's
//! watch list) in thread-local storage for the duration of each poll;
//! futures and job bodies reach it through [`with_ctx`]. The slot is
//! *taken* while borrowed, so a reentrant `with_ctx` — which would alias
//! `&mut RankCtx` — fails loudly instead of compiling to UB.

use std::cell::Cell;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use mpisim::{ChanId, RankCtx};

use crate::batch::{BatchRequest, EntryId};
use crate::neighbor::NeighborRequest;

// ---------------------------------------------------------------------------
// The per-poll thread-local scope
// ---------------------------------------------------------------------------

/// Raw pointers valid exactly for the duration of one task poll, installed
/// by [`ProgressDriver`] on the polling thread.
struct ActiveScope {
    ctx: *mut RankCtx,
    watches: *mut Vec<ChanId>,
}

thread_local! {
    static ACTIVE: Cell<Option<ActiveScope>> = const { Cell::new(None) };
}

/// Restores the taken scope when the borrow ends (including by panic).
struct ScopeRestore(Option<ActiveScope>);

impl Drop for ScopeRestore {
    fn drop(&mut self) {
        ACTIVE.with(|s| s.set(self.0.take()));
    }
}

fn take_scope(who: &str) -> ScopeRestore {
    let scope = ACTIVE.with(|s| s.take()).unwrap_or_else(|| {
        panic!(
            "{who} called outside a progress-driver poll (drive the future \
             with mpi_advance::future::block_on or a ProgressDriver), or \
             reentrantly while the rank context is already borrowed"
        )
    });
    ScopeRestore(Some(scope))
}

/// Borrow the driving rank's [`RankCtx`] from inside a polled future.
///
/// Only callable while a [`ProgressDriver`] (or [`block_on`]) is polling
/// the current task; panics otherwise, and panics on reentrant use (the
/// context is a unique borrow).
pub fn with_ctx<R>(f: impl FnOnce(&mut RankCtx) -> R) -> R {
    let guard = take_scope("with_ctx");
    // Safety: the driver installed this pointer for the duration of the
    // poll on this same thread, and the take-while-borrowed protocol above
    // guarantees no second mutable borrow can be created.
    let ctx = unsafe { &mut *guard.0.as_ref().unwrap().ctx };
    f(ctx)
}

/// Append channels to the current task's watch list: the driver will wake
/// this task when any of them delivers. Leaf futures call this before
/// returning `Poll::Pending`.
pub fn watch_chans(f: impl FnOnce(&mut Vec<ChanId>)) {
    let guard = take_scope("watch_chans");
    // Safety: same protocol as `with_ctx`.
    let watches = unsafe { &mut *guard.0.as_ref().unwrap().watches };
    f(watches)
}

// ---------------------------------------------------------------------------
// Leaf futures
// ---------------------------------------------------------------------------

/// The current iteration of one started [`NeighborRequest`], as a future.
/// Resolves when the iteration completes; the ghost values are then in
/// `output`. Poll is exactly `NeighborRequest::test`; while pending, the
/// request's `pending_chans` are registered with the driving executor. A
/// poll that finds no pending channels self-wakes (phase turnover needs
/// another `test`, not another delivery — same as the `wait` loop).
pub struct NeighborFuture<'a> {
    req: &'a mut dyn NeighborRequest,
    output: &'a mut [f64],
}

impl<'a> NeighborFuture<'a> {
    /// Wrap one started request. `output` must be aligned with the
    /// request's `output_index()`.
    pub fn new(req: &'a mut dyn NeighborRequest, output: &'a mut [f64]) -> Self {
        Self { req, output }
    }
}

impl Future for NeighborFuture<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if with_ctx(|ctx| this.req.test(ctx, this.output)) {
            return Poll::Ready(());
        }
        let mut any = false;
        watch_chans(|out| {
            let before = out.len();
            this.req.pending_chans(out);
            any = out.len() > before;
        });
        if !any {
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

/// Start one iteration of `req` with `input` and resolve when it
/// completes (ghost values in `output`) — `start_wait` as a future.
pub async fn exchange(req: &mut dyn NeighborRequest, input: &[f64], output: &mut [f64]) {
    with_ctx(|ctx| req.start(ctx, input));
    NeighborFuture::new(req, output).await;
}

/// Every in-flight entry of a [`BatchRequest`] session, as one future.
/// Resolves when the session's in-flight count reaches zero (each entry's
/// ghost values land in `outputs[e]` as it retires). Poll drains via
/// `test_any`, so the whole session makes maximal progress per wake.
pub struct BatchFuture<'a> {
    session: &'a mut BatchRequest,
    outputs: &'a mut [Vec<f64>],
}

impl<'a> BatchFuture<'a> {
    pub fn new(session: &'a mut BatchRequest, outputs: &'a mut [Vec<f64>]) -> Self {
        Self { session, outputs }
    }
}

impl Future for BatchFuture<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        loop {
            if this.session.in_flight() == 0 {
                return Poll::Ready(());
            }
            if with_ctx(|ctx| this.session.test_any(ctx, this.outputs)).is_none() {
                break;
            }
        }
        watch_chans(|out| this.session.pending_chans(out));
        Poll::Pending
    }
}

/// The **next** entry of a [`BatchRequest`] session to complete, as a
/// future: `wait_any` without the blocking — resolves to the retired
/// entry's id (its ghost values are in `outputs[e]`), letting a task
/// interleave per-entry compute with other tenants' traffic.
pub struct EntryFuture<'a> {
    session: &'a mut BatchRequest,
    outputs: &'a mut [Vec<f64>],
}

impl<'a> EntryFuture<'a> {
    /// The session must have at least one entry in flight (there must be
    /// something to wait for), checked at poll time.
    pub fn new(session: &'a mut BatchRequest, outputs: &'a mut [Vec<f64>]) -> Self {
        Self { session, outputs }
    }
}

impl Future for EntryFuture<'_> {
    type Output = EntryId;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<EntryId> {
        let this = self.get_mut();
        assert!(
            this.session.in_flight() > 0,
            "EntryFuture polled with no entry in flight"
        );
        if let Some(e) = with_ctx(|ctx| this.session.test_any(ctx, this.outputs)) {
            return Poll::Ready(e);
        }
        watch_chans(|out| this.session.pending_chans(out));
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Panic containment
// ---------------------------------------------------------------------------

/// Contain a panic inside the wrapped future's poll, resolving to
/// `Err(message)` instead of unwinding through the driver. This is the
/// tenant-isolation seam: a scheduler wraps each job's task so one
/// tenant's seeded `kill=` fault (or plain bug) fails that task alone. A
/// task that has resolved to `Err` is never polled again, so the broken
/// inner future is never observed post-panic.
pub struct CatchPanic<F>(F);

impl<F> CatchPanic<F> {
    pub fn new(fut: F) -> Self {
        Self(fut)
    }
}

impl<F: Future> Future for CatchPanic<F> {
    type Output = Result<F::Output, String>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: structural pin projection to the only field; we never
        // move out of it.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match std::panic::catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(p) => p.map(Ok),
            Err(payload) => Poll::Ready(Err(panic_text(payload))),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// The per-rank progress driver
// ---------------------------------------------------------------------------

struct FlagWaker(AtomicBool);

impl Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.0.store(true, Ordering::SeqCst);
    }
}

struct Task<'env, T> {
    /// `None` once the task resolved (or was cancelled).
    fut: Option<Pin<Box<dyn Future<Output = T> + 'env>>>,
    flag: Arc<FlagWaker>,
    waker: Waker,
    /// Channels whose delivery should wake this task, registered during
    /// its latest pending poll.
    watches: Vec<ChanId>,
    result: Option<T>,
}

/// Single-threaded executor for one rank: the **progress driver**.
///
/// Tasks are spawned as boxed futures; [`ProgressDriver::run`] loops
/// `poll_runnable` / `park` until every task resolves. The park point is
/// one [`RankCtx::wait_any`] over the union of all pending tasks' watched
/// channels (plus any caller-supplied extras, e.g. a scheduler's control
/// channels), after which exactly the tasks whose watched channels hold a
/// delivered message are marked runnable. One park for N tenants: the
/// overlap the service subsystem is built on.
pub struct ProgressDriver<'env, T> {
    tasks: Vec<Task<'env, T>>,
    union_scratch: Vec<ChanId>,
}

impl<'env, T> Default for ProgressDriver<'env, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, T> ProgressDriver<'env, T> {
    pub fn new() -> Self {
        Self {
            tasks: Vec::new(),
            union_scratch: Vec::new(),
        }
    }

    /// Add a task; it will be polled at the next `poll_runnable`. Returns
    /// its id (dense, in spawn order).
    pub fn spawn(&mut self, fut: impl Future<Output = T> + 'env) -> usize {
        let flag = Arc::new(FlagWaker(AtomicBool::new(true)));
        let waker = Waker::from(Arc::clone(&flag));
        self.tasks.push(Task {
            fut: Some(Box::pin(fut)),
            flag,
            waker,
            watches: Vec::new(),
            result: None,
        });
        self.tasks.len() - 1
    }

    /// Number of unresolved tasks.
    pub fn pending(&self) -> usize {
        self.tasks.iter().filter(|t| t.fut.is_some()).count()
    }

    /// Is task `id` still unresolved?
    pub fn is_pending(&self, id: usize) -> bool {
        self.tasks[id].fut.is_some()
    }

    /// Drop task `id` without resolving it (no result will appear). Its
    /// watches are forgotten, so it can no longer hold the park open.
    pub fn cancel(&mut self, id: usize) {
        let t = &mut self.tasks[id];
        t.fut = None;
        t.watches.clear();
    }

    /// Take task `id`'s result, if it resolved.
    pub fn take_result(&mut self, id: usize) -> Option<T> {
        self.tasks[id].result.take()
    }

    /// Poll every runnable (woken) task once; tasks woken *during* the
    /// pass (self-wakes) are polled again before it returns. Appends the
    /// ids of tasks that resolved, in completion order, to `completed`.
    pub fn poll_runnable(&mut self, ctx: &mut RankCtx, completed: &mut Vec<usize>) {
        let mut progressed = true;
        while progressed {
            progressed = false;
            for id in 0..self.tasks.len() {
                let t = &mut self.tasks[id];
                if t.fut.is_none() || !t.flag.0.swap(false, Ordering::SeqCst) {
                    continue;
                }
                progressed = true;
                t.watches.clear();
                let scope = ActiveScope {
                    ctx: ctx as *mut _,
                    watches: &mut t.watches as *mut _,
                };
                ACTIVE.with(|s| s.set(Some(scope)));
                // Clear the slot however the poll exits — a panic must not
                // leave dangling pointers installed.
                let _clear = ScopeClear;
                let mut cx = Context::from_waker(&t.waker);
                if let Poll::Ready(v) = t.fut.as_mut().unwrap().as_mut().poll(&mut cx) {
                    t.fut = None;
                    t.watches.clear();
                    t.result = Some(v);
                    completed.push(id);
                }
            }
        }
    }

    /// Would `park` return immediately because some task is already woken?
    pub fn has_runnable(&self) -> bool {
        self.tasks
            .iter()
            .any(|t| t.fut.is_some() && t.flag.0.load(Ordering::SeqCst))
    }

    /// Park the rank until some watched channel (of any pending task, or
    /// of `extra`) delivers, then mark exactly the tasks whose watched
    /// channels hold a delivered message as runnable. Returns immediately
    /// if a task is already woken. Panics — loudly, before blocking
    /// forever — if nothing is woken and nothing is watched.
    pub fn park(&mut self, ctx: &mut RankCtx, extra: &[ChanId]) {
        if self.has_runnable() {
            return;
        }
        let mut union = std::mem::take(&mut self.union_scratch);
        union.clear();
        union.extend(extra.iter().cloned());
        for t in &self.tasks {
            if t.fut.is_some() {
                union.extend(t.watches.iter().cloned());
            }
        }
        assert!(
            !union.is_empty(),
            "progress driver stalled: {} pending task(s), none runnable and \
             no watched channels — a future returned Pending without \
             registering its wake set",
            self.pending()
        );
        ctx.wait_any(&union);
        self.union_scratch = union;
        self.wake_delivered();
    }

    /// Mark every pending task with a delivered watched channel runnable.
    pub fn wake_delivered(&mut self) {
        for t in &mut self.tasks {
            if t.fut.is_some() && t.watches.iter().any(|c| c.ready()) {
                t.flag.0.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Drive every task to resolution.
    pub fn run(&mut self, ctx: &mut RankCtx) {
        let mut completed = Vec::new();
        while self.pending() > 0 {
            self.poll_runnable(ctx, &mut completed);
            if self.pending() > 0 {
                self.park(ctx, &[]);
            }
        }
    }
}

/// Clears the thread-local scope on drop (normal return or panic).
struct ScopeClear;

impl Drop for ScopeClear {
    fn drop(&mut self) {
        ACTIVE.with(|s| s.set(None));
    }
}

/// Drive one future to completion on the calling rank.
pub fn block_on<T>(ctx: &mut RankCtx, fut: impl Future<Output = T>) -> T {
    let mut driver = ProgressDriver::new();
    let id = driver.spawn(fut);
    driver.run(ctx);
    driver
        .take_result(id)
        .expect("block_on: task resolved without a result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use crate::neighbor::NeighborAlltoallv;
    use crate::pattern::CommPattern;
    use locality::Topology;
    use mpisim::World;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Each rank owns value id `r` and sends it to rank `r + 1` (mod n).
    fn ring_pattern(n: usize) -> CommPattern {
        CommPattern::new(n, (0..n).map(|r| vec![((r + 1) % n, vec![r])]).collect())
    }

    /// Counts how many times the inner future is polled.
    struct CountPolls<F> {
        inner: F,
        polls: Arc<AtomicUsize>,
    }

    impl<F: Future + Unpin> Future for CountPolls<F> {
        type Output = F::Output;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
            let this = self.get_mut();
            this.polls.fetch_add(1, Ordering::SeqCst);
            Pin::new(&mut this.inner).poll(cx)
        }
    }

    /// The waker contract: a future polled before its traffic lands
    /// registers its wake set and pends; the delivery wakes it exactly
    /// once (one pending poll + one completing poll, no spurious wakes).
    #[test]
    fn pending_poll_registers_and_delivery_wakes_exactly_once() {
        let topo = Topology::block_nodes(2, 1);
        let pat = ring_pattern(2);
        // one shared builder: resolution (and the tag lease) happens once,
        // so every rank registers matching tags
        let coll = NeighborAlltoallv::new(&pat, &topo).protocol(Protocol::StandardNeighbor);
        let polls = World::pool(2).run(|ctx| {
            let comm = ctx.comm_world();
            let mut req = coll.init(ctx, &comm);
            let input = [ctx.rank() as f64 * 10.0];
            let mut output = [f64::NAN];
            if ctx.rank() == 0 {
                // hold rank 0 back so rank 1's first poll strictly
                // precedes the delivery it is waiting for
                std::thread::sleep(Duration::from_millis(200));
                req.start(ctx, &input);
                req.wait(ctx, &mut output);
                assert_eq!(output, [10.0]);
                return 0;
            }
            req.start(ctx, &input);
            let polls = Arc::new(AtomicUsize::new(0));
            let mut driver: ProgressDriver<'_, ()> = ProgressDriver::new();
            let id = driver.spawn(CountPolls {
                inner: NeighborFuture::new(&mut *req, &mut output),
                polls: Arc::clone(&polls),
            });
            let mut done = Vec::new();
            driver.poll_runnable(ctx, &mut done);
            assert!(done.is_empty(), "nothing delivered yet: must pend");
            assert_eq!(polls.load(Ordering::SeqCst), 1);
            assert!(
                !driver.has_runnable(),
                "a pending poll must not leave the task woken"
            );
            driver.park(ctx, &[]);
            driver.poll_runnable(ctx, &mut done);
            assert_eq!(done, vec![id], "the delivery must wake the task");
            assert!(driver.take_result(id).is_some());
            drop(driver);
            assert_eq!(output, [0.0]);
            polls.load(Ordering::SeqCst)
        })[1];
        assert_eq!(
            polls, 2,
            "exactly one wake per delivery: a pending poll and the \
             completing poll, nothing spurious"
        );
    }

    /// No lost wakeups under racing deliveries: many back-to-back
    /// iterations driven through the futures layer terminate with the
    /// right values even when the peer's deposit lands between a poll
    /// and the park (the `wait_any` generation check closes that race).
    #[test]
    fn no_lost_wakeup_over_many_racing_iterations() {
        const N: usize = 4;
        const ITERS: usize = 200;
        let topo = Topology::block_nodes(N, 2);
        let pat = ring_pattern(N);
        let coll = NeighborAlltoallv::new(&pat, &topo).protocol(Protocol::StandardNeighbor);
        World::pool(N).run(|ctx| {
            let comm = ctx.comm_world();
            let mut req = coll.init(ctx, &comm);
            let me = ctx.rank();
            let left = (me + N - 1) % N;
            let mut output = [f64::NAN];
            for i in 0..ITERS {
                let input = [(me * ITERS + i) as f64];
                block_on(ctx, exchange(&mut *req, &input, &mut output));
                assert_eq!(output, [(left * ITERS + i) as f64]);
            }
        });
    }

    /// A panic inside one task resolves that task alone; sibling tasks
    /// on the same driver still run to completion.
    #[test]
    fn catch_panic_contains_one_task() {
        World::pool(1).run(|ctx| {
            let mut driver: ProgressDriver<'_, Result<u64, String>> = ProgressDriver::new();
            let bad = driver.spawn(CatchPanic::new(async { panic!("tenant boom") }));
            let good = driver.spawn(CatchPanic::new(async { 42 }));
            driver.run(ctx);
            let err = driver.take_result(bad).unwrap().unwrap_err();
            assert!(err.contains("tenant boom"), "{err}");
            assert_eq!(driver.take_result(good).unwrap(), Ok(42));
        });
    }

    #[test]
    #[should_panic(expected = "outside a progress-driver poll")]
    fn with_ctx_outside_a_poll_fails_loudly() {
        with_ctx(|_| ());
    }
}
