//! Model-driven dynamic protocol selection.
//!
//! Paper §5: "a simple performance measure is needed within the
//! neighborhood collective to dynamically select the optimal communication
//! strategy" — and §4.2's scaling figures already assume it ("summing up
//! the least expensive of standard communication and the given optimized
//! neighbor collective at each step"). This module implements that
//! selection: evaluate each candidate's plan under the performance model at
//! init time and keep the cheapest.

use crate::agg::{AssignStrategy, Plan};
use crate::analytic::iteration_time;
use crate::collective::Protocol;
use crate::pattern::CommPattern;
use locality::Topology;
use perfmodel::CostModel;

/// Pick the protocol with the lowest modeled per-iteration time for
/// `pattern` among `candidates`, planning with `strategy`. Returns the
/// winner, its (reusable) plan, and its modeled time.
pub fn choose_with(
    candidates: &[Protocol],
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
    strategy: AssignStrategy,
) -> (Protocol, Plan, f64) {
    assert!(!candidates.is_empty());
    candidates
        .iter()
        .map(|&p| {
            let plan = p.plan_with(pattern, topo, strategy);
            let t = iteration_time(&plan, topo, model, p.is_wrapped()).total;
            (p, plan, t)
        })
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty candidates")
}

/// Pick the protocol with the lowest modeled per-iteration time for
/// `pattern`, among `candidates`. Returns the winner and its modeled time.
pub fn choose_among(
    candidates: &[Protocol],
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
) -> (Protocol, f64) {
    let (p, _, t) = choose_with(
        candidates,
        pattern,
        topo,
        model,
        AssignStrategy::LoadBalanced,
    );
    (p, t)
}

/// Pick among all four protocols.
pub fn choose_protocol(
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
) -> (Protocol, f64) {
    choose_among(&Protocol::ALL, pattern, topo, model)
}

/// Per-level best-of time used by the paper's scaling studies: the minimum
/// of the standard protocol and `optimized` on this pattern.
pub fn best_of_with_standard(
    optimized: Protocol,
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
) -> f64 {
    choose_among(&[Protocol::StandardHypre, optimized], pattern, topo, model).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::LocalityModel;

    #[test]
    fn dense_irregular_pattern_selects_aggregation() {
        // Many small inter-region messages per rank → aggregation wins.
        let topo = Topology::block_nodes(32, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        let model = LocalityModel::lassen();
        let (winner, _) = choose_protocol(&pattern, &topo, &model);
        assert!(
            matches!(winner, Protocol::PartialNeighbor | Protocol::FullNeighbor),
            "got {winner}"
        );
    }

    #[test]
    fn sparse_neighbor_pattern_keeps_standard() {
        // One tiny message to the next node: aggregation adds pure overhead,
        // so the selector must keep a standard protocol (paper §5: optimized
        // collectives can *increase* costs for light patterns).
        let pattern = CommPattern::new(
            8,
            vec![
                vec![(4, vec![0])],
                vec![],
                vec![],
                vec![],
                vec![(0, vec![100])],
                vec![],
                vec![],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(8, 4);
        let model = LocalityModel::lassen();
        let (winner, _) = choose_protocol(&pattern, &topo, &model);
        assert!(
            matches!(winner, Protocol::StandardHypre | Protocol::StandardNeighbor),
            "got {winner}"
        );
    }

    #[test]
    fn best_of_never_worse_than_standard() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let model = LocalityModel::lassen();
        let std_t = iteration_time(
            &Protocol::StandardHypre.plan(&pattern, &topo),
            &topo,
            &model,
            false,
        )
        .total;
        let best = best_of_with_standard(Protocol::FullNeighbor, &pattern, &topo, &model);
        assert!(best <= std_t + 1e-15);
    }
}
