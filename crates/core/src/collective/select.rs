//! Model-driven dynamic protocol selection.
//!
//! Paper §5: "a simple performance measure is needed within the
//! neighborhood collective to dynamically select the optimal communication
//! strategy" — and §4.2's scaling figures already assume it ("summing up
//! the least expensive of standard communication and the given optimized
//! neighbor collective at each step"). This module implements that
//! selection: evaluate each candidate's plan under the performance model at
//! init time and keep the cheapest.

use crate::agg::{AssignStrategy, Plan};
use crate::analytic::iteration_time;
use crate::collective::Protocol;
use crate::pattern::CommPattern;
use locality::Topology;
use perfmodel::CostModel;

/// Pick the protocol with the lowest modeled per-iteration time for
/// `pattern` among `candidates`, planning with `strategy`. Returns the
/// winner, its (reusable) plan, and its modeled time.
pub fn choose_with(
    candidates: &[Protocol],
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
    strategy: AssignStrategy,
) -> (Protocol, Plan, f64) {
    assert!(!candidates.is_empty());
    candidates
        .iter()
        .map(|&p| {
            let plan = p.plan_with(pattern, topo, strategy);
            let t = iteration_time(&plan, topo, model, p.is_wrapped()).total;
            (p, plan, t)
        })
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty candidates")
}

/// Pick the protocol with the lowest modeled per-iteration time for
/// `pattern`, among `candidates`, planning with `strategy`. Returns the
/// winner and its modeled time. The strategy matters: aggregation plans
/// differ under `Balanced` vs `LoadBalanced` assignment, so candidates
/// must be evaluated under the strategy the caller will actually init
/// with — evaluating one and running another compares the wrong plans.
pub fn choose_among(
    candidates: &[Protocol],
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
    strategy: AssignStrategy,
) -> (Protocol, f64) {
    let (p, _, t) = choose_with(candidates, pattern, topo, model, strategy);
    (p, t)
}

/// Pick among all four protocols (load-balanced assignment, the default
/// strategy of the request builders).
pub fn choose_protocol(
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
) -> (Protocol, f64) {
    choose_among(
        &Protocol::ALL,
        pattern,
        topo,
        model,
        AssignStrategy::LoadBalanced,
    )
}

/// Per-level best-of time used by the paper's scaling studies: the minimum
/// of the standard protocol and `optimized` on this pattern.
pub fn best_of_with_standard(
    optimized: Protocol,
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
    strategy: AssignStrategy,
) -> f64 {
    choose_among(
        &[Protocol::StandardHypre, optimized],
        pattern,
        topo,
        model,
        strategy,
    )
    .1
}

/// Model-ranked probe candidates for `Backend::Tuned`: every protocol in
/// `candidates` whose modeled per-iteration time is within `factor` of
/// the best, cheapest first, each with its (reusable) plan and modeled
/// time. `factor` ≥ 1.0; 1.0 admits only the model's best (ties
/// included), `INFINITY` admits everything. The returned order is the
/// probe order *and* the tie-break order — an unmeasured or tied
/// candidate falls back to the model's preference.
pub fn candidates_within(
    candidates: &[Protocol],
    pattern: &CommPattern,
    topo: &Topology,
    model: &dyn CostModel,
    strategy: AssignStrategy,
    factor: f64,
) -> Vec<(Protocol, Plan, f64)> {
    assert!(!candidates.is_empty());
    assert!(factor >= 1.0, "admission factor must be >= 1.0");
    let mut ranked: Vec<(Protocol, Plan, f64)> = candidates
        .iter()
        .map(|&p| {
            let plan = p.plan_with(pattern, topo, strategy);
            let t = iteration_time(&plan, topo, model, p.is_wrapped()).total;
            (p, plan, t)
        })
        .collect();
    ranked.sort_by(|a, b| a.2.total_cmp(&b.2));
    let cutoff = ranked[0].2 * factor;
    ranked.retain(|&(_, _, t)| t <= cutoff);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::LocalityModel;

    #[test]
    fn dense_irregular_pattern_selects_aggregation() {
        // Many small inter-region messages per rank → aggregation wins.
        let topo = Topology::block_nodes(32, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        let model = LocalityModel::lassen();
        let (winner, _) = choose_protocol(&pattern, &topo, &model);
        assert!(
            matches!(winner, Protocol::PartialNeighbor | Protocol::FullNeighbor),
            "got {winner}"
        );
    }

    #[test]
    fn sparse_neighbor_pattern_keeps_standard() {
        // One tiny message to the next node: aggregation adds pure overhead,
        // so the selector must keep a standard protocol (paper §5: optimized
        // collectives can *increase* costs for light patterns).
        let pattern = CommPattern::new(
            8,
            vec![
                vec![(4, vec![0])],
                vec![],
                vec![],
                vec![],
                vec![(0, vec![100])],
                vec![],
                vec![],
                vec![],
            ],
        );
        let topo = Topology::block_nodes(8, 4);
        let model = LocalityModel::lassen();
        let (winner, _) = choose_protocol(&pattern, &topo, &model);
        assert!(
            matches!(winner, Protocol::StandardHypre | Protocol::StandardNeighbor),
            "got {winner}"
        );
    }

    #[test]
    fn best_of_never_worse_than_standard() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let model = LocalityModel::lassen();
        let std_t = iteration_time(
            &Protocol::StandardHypre.plan(&pattern, &topo),
            &topo,
            &model,
            false,
        )
        .total;
        let best = best_of_with_standard(
            Protocol::FullNeighbor,
            &pattern,
            &topo,
            &model,
            AssignStrategy::LoadBalanced,
        );
        assert!(best <= std_t + 1e-15);
    }

    #[test]
    fn candidates_within_ranks_cheapest_first_and_filters() {
        let topo = Topology::block_nodes(32, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        let model = LocalityModel::lassen();
        let all = candidates_within(
            &Protocol::ALL,
            &pattern,
            &topo,
            &model,
            AssignStrategy::LoadBalanced,
            f64::INFINITY,
        );
        assert_eq!(all.len(), 4, "INFINITY admits every candidate");
        assert!(all.windows(2).all(|w| w[0].2 <= w[1].2), "cheapest first");
        // the head of the ranking is exactly choose_protocol's winner
        let (winner, t) = choose_protocol(&pattern, &topo, &model);
        assert_eq!(all[0].0, winner);
        assert!((all[0].2 - t).abs() < 1e-15);
        // factor 1.0 admits only the best (ties impossible here: standard
        // vs aggregated costs differ by construction on this pattern)
        let best_only = candidates_within(
            &Protocol::ALL,
            &pattern,
            &topo,
            &model,
            AssignStrategy::LoadBalanced,
            1.0,
        );
        assert!(!best_only.is_empty() && best_only.len() < 4);
        assert_eq!(best_only[0].0, winner);
    }
}
