//! The four communication protocols of the paper's evaluation (§4) and the
//! model-driven dynamic selection the paper proposes as future work (§5).

pub mod select;

pub use select::choose_protocol;

use crate::agg::{AssignStrategy, Plan};
use crate::pattern::CommPattern;
use locality::Topology;
use serde::{Deserialize, Serialize};

/// The four protocols compared throughout §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Persistent point-to-point as implemented in Hypre 2.28.
    StandardHypre,
    /// The same messages wrapped in a persistent neighborhood collective
    /// (§3.1) — "unoptimized neighbor".
    StandardNeighbor,
    /// Locality-aware three-step aggregation (§3.2) — "partially optimized".
    PartialNeighbor,
    /// Aggregation plus duplicate removal (§3.3) — "fully optimized".
    FullNeighbor,
}

impl Protocol {
    /// All four, in the paper's presentation order.
    pub const ALL: [Protocol; 4] = [
        Protocol::StandardHypre,
        Protocol::StandardNeighbor,
        Protocol::PartialNeighbor,
        Protocol::FullNeighbor,
    ];

    /// Stable identifier: the variant name, used as the protocol key in
    /// persistent profile-cache entries (the label has spaces and can
    /// drift with figure wording; this cannot).
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::StandardHypre => "StandardHypre",
            Protocol::StandardNeighbor => "StandardNeighbor",
            Protocol::PartialNeighbor => "PartialNeighbor",
            Protocol::FullNeighbor => "FullNeighbor",
        }
    }

    /// Inverse of [`Protocol::name`]; `None` for anything else (e.g. a
    /// cache entry written by a build with different protocols).
    pub fn from_name(name: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::StandardHypre => "Standard Hypre",
            Protocol::StandardNeighbor => "Unoptimized Neighbor",
            Protocol::PartialNeighbor => "Partially Optimized Neighbor",
            Protocol::FullNeighbor => "Fully Optimized Neighbor",
        }
    }

    /// Build this protocol's communication plan for `pattern`.
    pub fn plan(&self, pattern: &CommPattern, topo: &Topology) -> Plan {
        self.plan_with(pattern, topo, AssignStrategy::LoadBalanced)
    }

    /// Build the plan with an explicit leader-assignment strategy
    /// (aggregating protocols only; ignored otherwise).
    pub fn plan_with(
        &self,
        pattern: &CommPattern,
        topo: &Topology,
        strategy: AssignStrategy,
    ) -> Plan {
        match self {
            Protocol::StandardHypre | Protocol::StandardNeighbor => Plan::standard(pattern, topo),
            Protocol::PartialNeighbor => Plan::aggregated(pattern, topo, false, strategy),
            Protocol::FullNeighbor => Plan::aggregated(pattern, topo, true, strategy),
        }
    }

    /// Whether Start/Wait run through the neighborhood-collective wrapper.
    pub fn is_wrapped(&self) -> bool {
        !matches!(self, Protocol::StandardHypre)
    }

    /// Whether this protocol needs the indices extension of §3.3.
    pub fn needs_indices(&self) -> bool {
        matches!(self, Protocol::FullNeighbor)
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::verify::verify_plan;

    #[test]
    fn all_protocols_produce_valid_plans() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for p in Protocol::ALL {
            let plan = p.plan(&pattern, &topo);
            verify_plan(&pattern, &plan, &topo);
            assert_eq!(
                plan.aggregated,
                matches!(p, Protocol::PartialNeighbor | Protocol::FullNeighbor)
            );
            assert_eq!(plan.dedup, p.needs_indices());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Protocol::StandardHypre.label(), "Standard Hypre");
        assert_eq!(
            Protocol::FullNeighbor.to_string(),
            "Fully Optimized Neighbor"
        );
    }

    #[test]
    fn wrapping_flags() {
        assert!(!Protocol::StandardHypre.is_wrapped());
        assert!(Protocol::StandardNeighbor.is_wrapped());
        assert!(Protocol::FullNeighbor.needs_indices());
        assert!(!Protocol::PartialNeighbor.needs_indices());
    }
}
