//! Request registration and buffer plumbing shared by both executors.
//!
//! The ℓ, s, and r steps are identical on the wire for the plain and the
//! partitioned executor — only the g step differs (single persistent
//! message vs partitioned request). The structs and registration helpers
//! for the common steps live here so each executor contains only its
//! genuinely distinct g-step logic.

use crate::routing::{RSendRoute, RecvRoute, SendRoute};
use mpisim::persistent::shared_buf;
use mpisim::{Comm, RankCtx, RecvReq, SendReq, SharedBuf};

/// A send whose slots all come straight from this rank's input.
pub(crate) struct SendExec {
    pub req: SendReq<f64>,
    pub buf: SharedBuf<f64>,
    /// Input position feeding each slot.
    pub sources: Vec<usize>,
}

/// A receive delivered straight into the output vector.
pub(crate) struct RecvExec {
    pub req: RecvReq<f64>,
    pub buf: SharedBuf<f64>,
    /// `(slot position, output position)` pairs delivered here.
    pub outputs: Vec<(usize, usize)>,
}

/// An r-step send: each slot forwards a received g value.
pub(crate) struct RSendExec {
    pub req: SendReq<f64>,
    pub buf: SharedBuf<f64>,
    /// `(g receive index, slot position)` feeding each slot.
    pub sources: Vec<(usize, usize)>,
}

pub(crate) fn register_sends(routes: Vec<SendRoute>, ctx: &RankCtx, comm: &Comm) -> Vec<SendExec> {
    routes
        .into_iter()
        .map(|s| {
            let buf = shared_buf(vec![0.0f64; s.sources.len()]);
            let req = ctx.send_init(comm, s.dst, s.tag, buf.clone(), 0, s.sources.len());
            SendExec {
                req,
                buf,
                sources: s.sources,
            }
        })
        .collect()
}

pub(crate) fn register_recvs(routes: Vec<RecvRoute>, ctx: &RankCtx, comm: &Comm) -> Vec<RecvExec> {
    routes
        .into_iter()
        .map(|r| {
            let buf = shared_buf(vec![0.0f64; r.len]);
            let req = ctx.recv_init(comm, r.src, r.tag, buf.clone(), 0, r.len);
            RecvExec {
                req,
                buf,
                outputs: r.outputs,
            }
        })
        .collect()
}

pub(crate) fn register_r_sends(
    routes: Vec<RSendRoute>,
    ctx: &RankCtx,
    comm: &Comm,
) -> Vec<RSendExec> {
    routes
        .into_iter()
        .map(|s| {
            let buf = shared_buf(vec![0.0f64; s.sources.len()]);
            let req = ctx.send_init(comm, s.dst, s.tag, buf.clone(), 0, s.sources.len());
            RSendExec {
                req,
                buf,
                sources: s.sources,
            }
        })
        .collect()
}

/// Rewrite a send buffer from the iteration's input values.
pub(crate) fn fill_from_input(buf: &SharedBuf<f64>, sources: &[usize], input: &[f64]) {
    let mut guard = buf.write();
    for (slot, &p) in guard.iter_mut().zip(sources) {
        *slot = input[p];
    }
}

/// Copy delivered slots into their output positions.
pub(crate) fn deliver(buf: &SharedBuf<f64>, outputs: &[(usize, usize)], output: &mut [f64]) {
    let guard = buf.read();
    for &(pos, out) in outputs {
        output[out] = guard[pos];
    }
}
