//! Request registration and buffer plumbing shared by both executors.
//!
//! The ℓ, s, and r steps are identical on the wire for the plain and the
//! partitioned executor — only the g step differs (single persistent
//! message vs partitioned request). The structs and registration helpers
//! for the common steps live here so each executor contains only its
//! genuinely distinct g-step logic.
//!
//! All common steps run on the zero-copy channel halves: a send gathers
//! its values straight into the pre-matched channel's recycled wire
//! buffer ([`SendChan::start_with`]) and a receive scatters straight from
//! the delivered payload ([`RecvChan::wait_with`]) — no per-request
//! staging windows, no per-iteration allocations.

use crate::routing::{RSendRoute, RecvRoute, SendRoute};
use mpisim::{ChanRegistrar, Comm, RankCtx, RecvChan, SendChan};

/// A send whose slots all come straight from this rank's input.
pub(crate) struct SendExec {
    pub req: SendChan<f64>,
    /// Input position feeding each slot.
    pub sources: Vec<usize>,
}

impl SendExec {
    /// Start one instance: gather `input` through the copy map directly
    /// into the channel's wire buffer.
    pub fn start_gather(&self, ctx: &mut RankCtx, input: &[f64]) {
        let sources = &self.sources;
        self.req
            .start_with(ctx, |buf| buf.extend(sources.iter().map(|&p| input[p])));
    }
}

/// A receive delivered straight into the output vector.
pub(crate) struct RecvExec {
    pub req: RecvChan<f64>,
    /// `(slot position, output position)` pairs delivered here.
    pub outputs: Vec<(usize, usize)>,
}

impl RecvExec {
    /// Non-blocking completion: if the payload has arrived, scatter it
    /// straight into `output` (no intermediate receive window) and report
    /// completion; otherwise leave the receive pending. One resumable
    /// completion step of the lifecycle's `test`.
    pub fn try_scatter(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        match self.req.try_take(ctx) {
            Some(data) => {
                for &(pos, out) in &self.outputs {
                    output[out] = data[pos];
                }
                self.req.recycle(data);
                true
            }
            None => false,
        }
    }
}

/// An r-step send: each slot forwards a received g value.
pub(crate) struct RSendExec {
    pub req: SendChan<f64>,
    /// `(g receive index, slot position)` feeding each slot.
    pub sources: Vec<(usize, usize)>,
}

impl RSendExec {
    /// Start one instance: gather forwarded g values (resolved by
    /// `lookup(g_msg, pos)`) directly into the channel's wire buffer.
    pub fn start_gather_from(&self, ctx: &mut RankCtx, lookup: impl Fn(usize, usize) -> f64) {
        let sources = &self.sources;
        self.req.start_with(ctx, |buf| {
            buf.extend(sources.iter().map(|&(m, p)| lookup(m, p)))
        });
    }
}

pub(crate) fn register_sends(
    routes: Vec<SendRoute>,
    reg: &mut ChanRegistrar,
    comm: &Comm,
) -> Vec<SendExec> {
    routes
        .into_iter()
        .map(|s| SendExec {
            req: reg.send_chan_init(comm, s.dst, s.tag, s.sources.len()),
            sources: s.sources,
        })
        .collect()
}

pub(crate) fn register_recvs(
    routes: Vec<RecvRoute>,
    reg: &mut ChanRegistrar,
    comm: &Comm,
) -> Vec<RecvExec> {
    routes
        .into_iter()
        .map(|r| RecvExec {
            req: reg.recv_chan_init(comm, r.src, r.tag, r.len),
            outputs: r.outputs,
        })
        .collect()
}

pub(crate) fn register_r_sends(
    routes: Vec<RSendRoute>,
    reg: &mut ChanRegistrar,
    comm: &Comm,
) -> Vec<RSendExec> {
    routes
        .into_iter()
        .map(|s| RSendExec {
            req: reg.send_chan_init(comm, s.dst, s.tag, s.sources.len()),
            sources: s.sources,
        })
        .collect()
}
