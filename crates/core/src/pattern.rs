//! Irregular communication patterns.
//!
//! A [`CommPattern`] is the global view of one irregular exchange: which
//! vector entries (identified by their global indices) each rank sends to
//! each other rank. It is exactly the information Hypre's comm package
//! holds, and — crucially for the paper's §3.3 extension — it carries the
//! *indices* of the values, which is what enables duplicate removal.

use serde::{Deserialize, Serialize};
use sparse::CommPkg;

/// Global description of an irregular exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPattern {
    pub n_ranks: usize,
    /// `sends[src]` = `(dst, global indices)` pairs, dst ascending, indices
    /// ascending and unique per destination.
    pub sends: Vec<Vec<(usize, Vec<usize>)>>,
}

impl CommPattern {
    /// An empty pattern.
    pub fn empty(n_ranks: usize) -> Self {
        Self {
            n_ranks,
            sends: vec![Vec::new(); n_ranks],
        }
    }

    /// Build from per-rank send lists, normalizing order and validating.
    ///
    /// Every value index must have a **unique origin** (one owning rank may
    /// send it, to any number of destinations) — the property that makes
    /// duplicate removal well-defined. Patterns where several ranks
    /// contribute to the same index (e.g. a transposed-SpMV reduction) are
    /// a different collective (they need summation, not transport) and are
    /// rejected here. The check is a flat `(index, src)` sort, not a hash
    /// map: one allocation, adjacent-pair comparison.
    pub fn new(n_ranks: usize, mut sends: Vec<Vec<(usize, Vec<usize>)>>) -> Self {
        assert_eq!(sends.len(), n_ranks);
        let mut owned: Vec<(usize, usize)> = Vec::new();
        for (src, list) in sends.iter_mut().enumerate() {
            list.sort_by_key(|&(d, _)| d);
            for (dst, idx) in list.iter_mut() {
                assert!(*dst < n_ranks, "dst {dst} out of range");
                assert_ne!(*dst, src, "self-sends are local copies, not messages");
                idx.sort_unstable();
                idx.dedup();
                assert!(!idx.is_empty(), "empty send {src}->{dst}");
                owned.extend(idx.iter().map(|&i| (i, src)));
            }
            for w in list.windows(2) {
                assert!(w[0].0 != w[1].0, "duplicate destination in rank {src}");
            }
        }
        owned.sort_unstable();
        for w in owned.windows(2) {
            assert!(
                w[0].0 != w[1].0 || w[0].1 == w[1].1,
                "index {} sent by both rank {} and rank {}",
                w[0].0,
                w[0].1,
                w[1].1
            );
        }
        Self { n_ranks, sends }
    }

    /// Build the SpMV halo-exchange pattern from comm packages.
    pub fn from_comm_pkgs(pkgs: &[CommPkg]) -> Self {
        let sends = pkgs
            .iter()
            .map(|p| p.sends.iter().map(|(d, idx)| (*d, idx.clone())).collect())
            .collect();
        Self::new(pkgs.len(), sends)
    }

    /// Derived receive lists: `recvs[dst]` = `(src, indices)`, src ascending.
    pub fn recvs(&self) -> Vec<Vec<(usize, Vec<usize>)>> {
        let mut recvs: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); self.n_ranks];
        for (src, list) in self.sends.iter().enumerate() {
            for (dst, idx) in list {
                recvs[*dst].push((src, idx.clone()));
            }
        }
        // sends iterated in src order ⇒ already ascending by src
        recvs
    }

    /// Number of (value, destination) pairs — the traffic volume without
    /// deduplication.
    pub fn total_slots(&self) -> usize {
        self.sends
            .iter()
            .flat_map(|l| l.iter().map(|(_, idx)| idx.len()))
            .sum()
    }

    /// Number of point-to-point messages in the pattern.
    pub fn total_msgs(&self) -> usize {
        self.sends.iter().map(Vec::len).sum()
    }

    /// Sorted unique indices rank `r` contributes (its "owned" values that
    /// leave the rank).
    pub fn src_indices(&self, r: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.sends[r]
            .iter()
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted unique indices rank `r` receives (its ghost values).
    pub fn dst_indices(&self, r: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .sends
            .iter()
            .flat_map(|l| l.iter())
            .filter(|(d, _)| *d == r)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// [`CommPattern::src_indices`] of every rank at once — one sweep over
    /// the pattern instead of one per rank.
    pub fn all_src_indices(&self) -> Vec<Vec<usize>> {
        self.sends
            .iter()
            .map(|list| {
                let mut v: Vec<usize> = list
                    .iter()
                    .flat_map(|(_, idx)| idx.iter().copied())
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }

    /// [`CommPattern::dst_indices`] of every rank at once — one sweep over
    /// the pattern instead of one O(pattern) scan per rank.
    pub fn all_dst_indices(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.n_ranks];
        for list in &self.sends {
            for (dst, idx) in list {
                out[*dst].extend(idx.iter().copied());
            }
        }
        for v in &mut out {
            v.sort_unstable();
            v.dedup();
        }
        out
    }

    /// A communication-heavy benchmark pattern: every rank sends one unique
    /// value to **every rank of every other region** (rank `r` owns indices
    /// `r·n_ranks ..`). This is the regime the paper's optimizations target
    /// — many small inter-region messages per process, as on the middle AMG
    /// levels — and is used by tests asserting that aggregation wins.
    pub fn all_to_all_regions(topo: &locality::Topology) -> Self {
        let n = topo.n_ranks();
        let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        for (src, list) in sends.iter_mut().enumerate() {
            let mut k = 0;
            for dst in 0..n {
                if dst != src && !topo.same_region(src, dst) {
                    list.push((dst, vec![src * n + k]));
                    k += 1;
                }
            }
        }
        Self::new(n, sends)
    }

    /// Stable signature of the pattern's communication shape — the
    /// profile-cache key foundation (DESIGN.md §11).
    ///
    /// Hashes the multiset of `(src, dst, len)` message triples plus the
    /// rank count: two patterns moving the same message sizes between
    /// the same pairs collide deliberately (their measured winner is the
    /// same), while the *indices* sent do not participate (they change
    /// staging positions, not protocol ranking). Triples combine by
    /// wrapping addition, so the signature is independent of iteration
    /// order by construction, and the mixing is explicit arithmetic —
    /// not `DefaultHasher`, whose keys the standard library does not
    /// promise to keep stable across releases. The value is pinned by a
    /// literal in the unit tests: changing this function invalidates
    /// every on-disk profile cache and must bump `tuner`'s
    /// `PROFILE_VERSION`.
    pub fn pattern_signature(&self) -> u64 {
        // splitmix64 finalizer: full-avalanche mixing per triple
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        let mut acc = mix(0x9e3779b97f4a7c15 ^ self.n_ranks as u64);
        for (src, list) in self.sends.iter().enumerate() {
            for (dst, idx) in list {
                let triple = mix(src as u64)
                    .wrapping_add(mix((*dst as u64) ^ 0xd6e8feb86659fd93))
                    .wrapping_add(mix((idx.len() as u64) ^ 0xa5a5a5a5a5a5a5a5));
                acc = acc.wrapping_add(mix(triple));
            }
        }
        acc
    }

    /// The paper's Example 2.1 (Figure 2): 8 processes in two regions of
    /// four; each process in region 0 holds two values (circle = index
    /// `2·rank`, square = `2·rank + 1`) shaded with the destination
    /// processes in region 1.
    ///
    /// The shading is taken from the paper's prose: process `P0`'s circle
    /// goes to `P5, P6` and its square to `P4, P5, P7`; `P2`'s circle goes
    /// to `P4, P7` and its square to `P4, P5, P6`. `P1`/`P3` are filled in
    /// so the total matches Figure 3's count of **15** inter-region
    /// messages.
    pub fn example_2_1() -> Self {
        let circle = |r: usize| 2 * r;
        let square = |r: usize| 2 * r + 1;
        let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); 8];
        let mut add = |src: usize, idx: usize, dsts: &[usize]| {
            for &d in dsts {
                match sends[src].iter_mut().find(|(dst, _)| *dst == d) {
                    Some((_, v)) => v.push(idx),
                    None => sends[src].push((d, vec![idx])),
                }
            }
        };
        // P0: circle → P5,P6; square → P4,P5,P7      (4 dests)
        add(0, circle(0), &[5, 6]);
        add(0, square(0), &[4, 5, 7]);
        // P1: circle → P5; square → P6,P7            (3 dests)
        add(1, circle(1), &[5]);
        add(1, square(1), &[6, 7]);
        // P2: circle → P4,P7; square → P4,P5,P6      (4 dests)
        add(2, circle(2), &[4, 7]);
        add(2, square(2), &[4, 5, 6]);
        // P3: circle → P4,P6; square → P5,P7         (4 dests)
        add(3, circle(3), &[4, 6]);
        add(3, square(3), &[5, 7]);
        Self::new(8, sends)
    }
}

/// Inverse index of a pattern: for every global value index, its position
/// within its owning rank's sorted input list ([`CommPattern::src_indices`]).
/// Crate-internal — the routing sweep's slot-position resolver.
///
/// Representation is chosen at build time: when the index space is compact
/// (row/value identifiers bounded by a small multiple of the slot count,
/// the common mesh/matrix numbering), a dense array gives one-load
/// lookups; for sparse index spaces (e.g. a few boundary values out of a
/// huge row space) a sorted `(index, pos)` vector keeps memory O(slots)
/// at the cost of a binary search per lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum InverseIndex {
    /// `pos[index]`, `usize::MAX` marking indices no rank sends.
    Dense(Vec<usize>),
    /// `(index, pos)` sorted by index.
    Sorted(Vec<(usize, usize)>),
}

impl InverseIndex {
    /// Build from precomputed per-rank input lists
    /// ([`CommPattern::all_src_indices`]) — callers that already have them
    /// (the routing sweep) avoid a second pattern sweep.
    pub(crate) fn from_inputs(inputs: &[Vec<usize>]) -> Self {
        let total: usize = inputs.iter().map(Vec::len).sum();
        let max = inputs
            .iter()
            .filter_map(|v| v.last().copied())
            .max()
            .map_or(0, |m| m + 1);
        if max <= 4 * total + 1024 {
            let mut pos = vec![usize::MAX; max];
            for list in inputs {
                for (p, &i) in list.iter().enumerate() {
                    pos[i] = p;
                }
            }
            InverseIndex::Dense(pos)
        } else {
            let mut v: Vec<(usize, usize)> = inputs
                .iter()
                .flat_map(|list| list.iter().enumerate().map(|(p, &i)| (i, p)))
                .collect();
            v.sort_unstable();
            InverseIndex::Sorted(v)
        }
    }

    /// Position of `index` within its origin's sorted input list. Panics
    /// for indices the pattern never sends.
    pub(crate) fn input_pos(&self, index: usize) -> usize {
        let p = match self {
            InverseIndex::Dense(pos) => pos.get(index).copied().unwrap_or(usize::MAX),
            InverseIndex::Sorted(v) => v
                .binary_search_by_key(&index, |e| e.0)
                .map_or(usize::MAX, |k| v[k].1),
        };
        assert_ne!(p, usize::MAX, "index {index} not sent by any rank");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::laplace_2d_5pt;
    use sparse::{build_comm_pkgs, Partition};

    #[test]
    fn example_2_1_has_15_messages() {
        let p = CommPattern::example_2_1();
        assert_eq!(p.total_msgs(), 15, "Figure 3: 15 inter-region messages");
        // every message crosses the region boundary
        for (src, list) in p.sends.iter().enumerate() {
            for (dst, _) in list {
                assert!(src < 4 && *dst >= 4);
            }
        }
    }

    #[test]
    fn example_2_1_slot_count() {
        let p = CommPattern::example_2_1();
        // (value, destination) pairs: P0: 2+3, P1: 1+2, P2: 2+3, P3: 2+2
        assert_eq!(p.total_slots(), 17);
        // 8 distinct values leave region 0
        let all: std::collections::BTreeSet<usize> =
            (0..4).flat_map(|r| p.src_indices(r)).collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn recvs_transpose_sends() {
        let p = CommPattern::example_2_1();
        let r = p.recvs();
        // P5 receives: sq0 from P0, ci0 from P0, ci1 from P1, sq2 from P2, sq3 from P3
        let p5: Vec<(usize, Vec<usize>)> = r[5].clone();
        assert_eq!(p5.len(), 4);
        assert_eq!(p5[0], (0, vec![0, 1])); // circle0=0, square0=1
        let total_recv: usize = r.iter().flat_map(|l| l.iter().map(|(_, v)| v.len())).sum();
        assert_eq!(total_recv, p.total_slots());
    }

    #[test]
    fn from_pkgs_roundtrip() {
        let a = laplace_2d_5pt(8, 8);
        let part = Partition::block(64, 4);
        let pkgs = build_comm_pkgs(&a, &part);
        let pattern = CommPattern::from_comm_pkgs(&pkgs);
        assert_eq!(pattern.n_ranks, 4);
        // ghost sets from pattern match comm pkg recv sets
        #[allow(clippy::needless_range_loop)]
        for rank in 0..4 {
            let mut expect: Vec<usize> = pkgs[rank]
                .recvs
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            expect.sort_unstable();
            assert_eq!(pattern.dst_indices(rank), expect);
        }
    }

    #[test]
    fn inverse_index_matches_per_rank_lookup() {
        let p = CommPattern::example_2_1();
        let inv = InverseIndex::from_inputs(&p.all_src_indices());
        assert!(matches!(inv, InverseIndex::Dense(_)));
        assert_eq!(
            p.all_src_indices(),
            (0..8).map(|r| p.src_indices(r)).collect::<Vec<_>>()
        );
        assert_eq!(
            p.all_dst_indices(),
            (0..8).map(|r| p.dst_indices(r)).collect::<Vec<_>>()
        );
        for r in 0..8 {
            for (pos, &i) in p.src_indices(r).iter().enumerate() {
                assert_eq!(inv.input_pos(i), pos);
            }
        }
    }

    #[test]
    fn inverse_index_sparse_fallback_stays_small() {
        // two slots spread over a huge index space: the sorted
        // representation must kick in and still resolve positions
        let p = CommPattern::new(2, vec![vec![(1, vec![7, 1 << 40])], vec![]]);
        let inv = InverseIndex::from_inputs(&p.all_src_indices());
        assert!(matches!(&inv, InverseIndex::Sorted(v) if v.len() == 2));
        assert_eq!(inv.input_pos(7), 0);
        assert_eq!(inv.input_pos(1 << 40), 1);
    }

    #[test]
    #[should_panic(expected = "not sent by any rank")]
    fn inverse_index_rejects_unknown() {
        // indices 0 and 5 exist; 3 is a hole in the dense table
        let p = CommPattern::new(2, vec![vec![(1, vec![0, 5])], vec![]]);
        InverseIndex::from_inputs(&p.all_src_indices()).input_pos(3);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_rejected() {
        CommPattern::new(2, vec![vec![(0, vec![1])], vec![]]);
    }

    #[test]
    #[should_panic(expected = "sent by both")]
    fn multi_origin_index_rejected() {
        // ranks 0 and 1 both claim to own index 7
        CommPattern::new(3, vec![vec![(2, vec![7])], vec![(2, vec![7])], vec![]]);
    }

    #[test]
    fn signature_is_order_independent() {
        let p = CommPattern::example_2_1();
        // same triples, hand-scrambled list order (bypassing new()'s
        // normalization): the commutative combine must not care
        let mut scrambled = p.clone();
        for list in &mut scrambled.sends {
            list.reverse();
        }
        assert_eq!(p.pattern_signature(), scrambled.pattern_signature());
    }

    #[test]
    fn signature_pinned_across_process_runs() {
        // Literal pin: this value is what lands in on-disk profile
        // caches. If this test fails, the signature function changed —
        // bump tuner::PROFILE_VERSION alongside the new literal.
        assert_eq!(CommPattern::example_2_1().pattern_signature(), SIG_2_1);
        // stable against re-derivation in the same process too
        assert_eq!(CommPattern::example_2_1().pattern_signature(), SIG_2_1);
    }
    const SIG_2_1: u64 = 0x04ee3095b8f6f7aa;

    #[test]
    fn signature_separates_shapes() {
        let base = CommPattern::example_2_1();
        // one message's payload grows by one value → different signature
        let mut bigger = base.clone();
        bigger.sends[0][0].1.push(999);
        assert_ne!(base.pattern_signature(), bigger.pattern_signature());
        // same sends, more (idle) ranks → different signature
        let mut wider = base.clone();
        wider.n_ranks = 9;
        wider.sends.push(Vec::new());
        assert_ne!(base.pattern_signature(), wider.pattern_signature());
        // indices don't matter, only counts: swap a value for another
        let mut renumbered = base.clone();
        renumbered.sends[0][0].1[0] = 12345;
        assert_eq!(base.pattern_signature(), renumbered.pattern_signature());
    }

    #[test]
    fn dense_pattern_is_valid_and_symmetric() {
        let topo = locality::Topology::block_nodes(12, 4);
        let p = CommPattern::all_to_all_regions(&topo);
        // every rank sends to the 8 ranks of the 2 other regions
        for r in 0..12 {
            assert_eq!(p.sends[r].len(), 8);
        }
        assert_eq!(p.total_msgs(), 12 * 8);
        // and receives the same number of values
        for r in 0..12 {
            assert_eq!(p.dst_indices(r).len(), 8);
        }
    }
}
