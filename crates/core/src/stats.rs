//! Per-rank message statistics of a plan — the quantities plotted in the
//! paper's Figures 8, 9 and 10.

use crate::agg::Plan;
use serde::{Deserialize, Serialize};

/// Bytes per value slot (the experiments move `f64` vector entries).
pub const VALUE_BYTES: usize = 8;

/// Message statistics of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Max over ranks of intra-region messages sent (ℓ + s + r) — Figure 8.
    pub max_local_msgs: usize,
    /// Max over ranks of inter-region messages sent (g) — Figure 9.
    pub max_global_msgs: usize,
    /// Max over ranks of inter-region bytes sent — Figure 10.
    pub max_global_bytes: usize,
    /// Totals across all ranks (for aggregate comparisons).
    pub total_local_msgs: usize,
    pub total_global_msgs: usize,
    pub total_global_bytes: usize,
}

impl PlanStats {
    /// Compute the statistics of `plan`.
    pub fn of(plan: &Plan) -> Self {
        let n = plan.n_ranks;
        let mut local_sends = vec![0usize; n];
        let mut global_sends = vec![0usize; n];
        let mut global_bytes = vec![0usize; n];

        for m in plan.local.iter().chain(&plan.s_step).chain(&plan.r_step) {
            local_sends[m.src] += 1;
        }
        for m in &plan.g_step {
            global_sends[m.src] += 1;
            global_bytes[m.src] += m.n_values() * VALUE_BYTES;
        }

        Self {
            max_local_msgs: local_sends.iter().copied().max().unwrap_or(0),
            max_global_msgs: global_sends.iter().copied().max().unwrap_or(0),
            max_global_bytes: global_bytes.iter().copied().max().unwrap_or(0),
            total_local_msgs: local_sends.iter().sum(),
            total_global_msgs: global_sends.iter().sum(),
            total_global_bytes: global_bytes.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AssignStrategy, Plan};
    use crate::pattern::CommPattern;
    use locality::Topology;

    #[test]
    fn example_standard_vs_aggregated_counts() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let std_stats = PlanStats::of(&Plan::standard(&pattern, &topo));
        let agg = Plan::aggregated(&pattern, &topo, false, AssignStrategy::RoundRobin);
        let agg_stats = PlanStats::of(&agg);

        // Figures 8/9 in miniature: aggregation trades inter-region
        // messages for intra-region ones.
        assert_eq!(std_stats.total_global_msgs, 15);
        assert_eq!(std_stats.total_local_msgs, 0);
        assert_eq!(agg_stats.total_global_msgs, 1);
        assert!(agg_stats.total_local_msgs > 0);
        assert!(agg_stats.max_global_msgs < std_stats.max_global_msgs);
        assert!(agg_stats.max_local_msgs > std_stats.max_local_msgs);
    }

    #[test]
    fn figure_10_dedup_shrinks_bytes() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let partial = PlanStats::of(&Plan::aggregated(
            &pattern,
            &topo,
            false,
            AssignStrategy::RoundRobin,
        ));
        let full = PlanStats::of(&Plan::aggregated(
            &pattern,
            &topo,
            true,
            AssignStrategy::RoundRobin,
        ));
        assert_eq!(partial.max_global_bytes, 17 * VALUE_BYTES);
        assert_eq!(full.max_global_bytes, 8 * VALUE_BYTES);
        // ≈ the paper's "up to 35%" reduction scale — here 53%
        assert!(full.max_global_bytes < partial.max_global_bytes);
    }

    #[test]
    fn empty_plan_zero_stats() {
        let pattern = CommPattern::empty(4);
        let topo = Topology::block_nodes(4, 2);
        let s = PlanStats::of(&Plan::standard(&pattern, &topo));
        assert_eq!(s.max_local_msgs + s.max_global_msgs + s.max_global_bytes, 0);
    }
}
