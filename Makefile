# Developer entry points. `make tier1` mirrors the CI verify exactly.

.PHONY: tier1 build test test-all fmt clippy lint bench bench-baseline

tier1: ## the repository's tier-1 verify
	cargo build --release && cargo test -q

build:
	cargo build --release

test:
	cargo test -q

test-all:
	cargo test --workspace -q

fmt:
	cargo fmt --all

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

lint: clippy
	cargo fmt --all --check

bench:
	cargo bench -p bench_suite --bench protocols

# refresh the committed wall-clock baseline
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_protocols.json cargo bench -p bench_suite --bench protocols
