# Developer entry points. `make tier1` mirrors the CI verify exactly.

.PHONY: tier1 build test test-all test-chaos test-sock test-tuner test-serve fmt clippy lint bench bench-steady bench-smoke bench-baseline bench-check bench-transport bench-service

tier1: ## the repository's tier-1 verify
	cargo build --release && cargo test -q

build:
	cargo build --release

test:
	cargo test -q

test-all:
	cargo test --workspace -q

# the fault-injection suite (DESIGN.md §9): seeded chaos schedules
# byte-identical to fault-free runs, kill matrices over both fabrics and
# lifecycles, deadline aborts with stall forensics
test-chaos:
	cargo test --test chaos -q

# the socket fabric's acceptance suite (DESIGN.md §10): multi-process
# worlds over UDS and TCP byte-identical to the thread transport, link
# severs healed by reconnect-with-resume, worker death and fault-plan
# kills contained loudly, no leaked UDS listener paths
test-sock:
	cargo test --test sock_process -q

# the online autotuner's acceptance suite (DESIGN.md §11): Backend::Tuned
# converging to the measured-fastest protocol where a mis-parameterized
# model fools Auto, profile-cache warm starts skipping the probe phase,
# and probe/decide/steady-state byte identity on all three fabrics
test-tuner:
	cargo test --test tuner -q

# the solve service's acceptance suite (DESIGN.md §12): concurrent
# multi-tenant epochs byte-identical to serialized runs and to the
# reference replay on all three fabrics, a warm pool surviving
# successive rounds, a seeded kill failing exactly one tenant (with
# rank attribution) while the others stay byte-identical to solo runs,
# and deadline dumps naming every job they take down
test-serve:
	cargo test --test serve -q

fmt:
	cargo fmt --all

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

lint: clippy
	cargo fmt --all --check

bench:
	cargo bench -p bench_suite --bench protocols

# just the allocation-sensitive steady-state group: ≥100 start_wait
# iterations per sample on one warm pooled world
bench-steady:
	cargo bench -p bench_suite --bench protocols -- steady_state

# the steady_state_8proc deployment pair: the same steady-state exchange
# with ranks as 8 real OS processes on the /dev/shm fabric vs one pooled
# thread world, then the process/thread ratio report (REPORT-only — see
# scripts/bench_compare --transport; no committed baseline because
# multi-process timings are machine-sensitive)
bench-transport:
	BENCH_JSON=/tmp/BENCH_transport.json cargo bench -p bench_suite --bench transport
	scripts/bench_compare /tmp/BENCH_transport.json

# the multi-tenant throughput pair: twenty-four jobs batched into one
# epoch vs the same jobs run epoch-per-job on the same warm pool, then
# the jobs/sec gate (scripts/bench_compare --service: concurrent must
# clear 1.2x sequential)
bench-service:
	BENCH_JSON=/tmp/BENCH_service.json cargo bench -p bench_suite --bench service
	scripts/bench_compare /tmp/BENCH_service.json

# compile and execute every bench binary once (criterion --test smoke
# mode) — including the pooled steady-state group, the
# batch_init_256ranks batch-vs-per-pattern pair, the overlap_32ranks
# wait_any-vs-wait_all lifecycle pair, and the steady_state_8proc
# thread-vs-process pair (which spawns 8 real worker processes); run on
# every PR by CI so benches cannot rot
bench-smoke:
	cargo bench -p bench_suite --benches -- --test

# refresh the committed wall-clock baseline: the protocols bench plus the
# steady_state_8proc deployment group (each bench binary overwrites
# BENCH_JSON wholesale, so each runs into its own file and the results
# merge)
bench-baseline:
	BENCH_JSON=/tmp/BENCH_protocols.part.json cargo bench -p bench_suite --bench protocols
	BENCH_JSON=/tmp/BENCH_transport.part.json cargo bench -p bench_suite --bench transport
	scripts/bench_merge /tmp/BENCH_protocols.part.json /tmp/BENCH_transport.part.json > $(CURDIR)/BENCH_protocols.json

# full protocols + transport benches vs the committed baseline; fails on
# >10% median regressions (scripts/bench_compare) — except the deployment
# groups, whose multi-process medians are load-sensitive and report-only
bench-check:
	BENCH_JSON=/tmp/BENCH_protocols.new.part.json cargo bench -p bench_suite --bench protocols
	BENCH_JSON=/tmp/BENCH_transport.new.part.json cargo bench -p bench_suite --bench transport
	scripts/bench_merge /tmp/BENCH_protocols.new.part.json /tmp/BENCH_transport.new.part.json > /tmp/BENCH_protocols.new.json
	scripts/bench_compare $(CURDIR)/BENCH_protocols.json /tmp/BENCH_protocols.new.json
