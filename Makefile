# Developer entry points. `make tier1` mirrors the CI verify exactly.

.PHONY: tier1 build test test-all fmt clippy lint bench bench-steady bench-smoke bench-baseline bench-check

tier1: ## the repository's tier-1 verify
	cargo build --release && cargo test -q

build:
	cargo build --release

test:
	cargo test -q

test-all:
	cargo test --workspace -q

fmt:
	cargo fmt --all

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

lint: clippy
	cargo fmt --all --check

bench:
	cargo bench -p bench_suite --bench protocols

# just the allocation-sensitive steady-state group: ≥100 start_wait
# iterations per sample on one warm pooled world
bench-steady:
	cargo bench -p bench_suite --bench protocols -- steady_state

# compile and execute every bench binary once (criterion --test smoke
# mode) — including the pooled steady-state group and the
# batch_init_256ranks batch-vs-per-pattern pair and the overlap_32ranks
# wait_any-vs-wait_all lifecycle pair; run on every PR by CI so benches
# cannot rot
bench-smoke:
	cargo bench -p bench_suite --benches -- --test

# refresh the committed wall-clock baseline
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_protocols.json cargo bench -p bench_suite --bench protocols

# full protocols bench vs the committed baseline; fails on >10% median
# regressions (scripts/bench_compare)
bench-check:
	BENCH_JSON=/tmp/BENCH_protocols.new.json cargo bench -p bench_suite --bench protocols
	scripts/bench_compare $(CURDIR)/BENCH_protocols.json /tmp/BENCH_protocols.new.json
