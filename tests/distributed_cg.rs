//! A complete distributed solver on the simulated runtime: unpreconditioned
//! conjugate gradients where **every** SpMV halo exchange runs through a
//! persistent neighborhood collective and every reduction through the
//! simulated MPI collectives — the paper's application scenario end to end
//! (irregular communication inside an iterative solver, §1).

use locality::Topology;
use mpi_advance::{CommPattern, NeighborAlltoallv, Protocol};
use mpisim::collectives::op_sum_f64;
use mpisim::World;
use sparse::gen::diffusion::paper_problem;
use sparse::vector::{norm2, random_vec};
use sparse::{build_comm_pkgs, Csr, ParCsr, Partition};

/// Distributed CG for `A x = b`, returning the global solution and the
/// number of iterations. SPMD over `ranks` simulated processes.
fn distributed_cg(
    a: &Csr,
    b: &[f64],
    ranks: usize,
    ppn: usize,
    protocol: Protocol,
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = a.n_rows();
    let part = Partition::block(n, ranks);
    let pkgs = build_comm_pkgs(a, &part);
    let pattern = CommPattern::from_comm_pkgs(&pkgs);
    let topo = Topology::block_nodes(ranks, ppn);
    let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(protocol);
    let pars: Vec<ParCsr> = ParCsr::split_all(a, &part);

    let results = World::run(ranks, |ctx| {
        let comm = ctx.comm_world();
        let me = ctx.rank();
        let par = &pars[me];
        let range = part.range(me);
        let local_n = range.len();
        let b_local = &b[range.clone()];

        let mut nb = coll.init(ctx, &comm);
        // positions of the exported values within the local vector
        let export: Vec<usize> = nb.input_index().iter().map(|&g| g - range.start).collect();

        let mut ghost = vec![0.0f64; nb.output_index().len()];
        // distributed SpMV: halo exchange + local diag/offd multiply
        macro_rules! spmv {
            ($v:expr) => {{
                let input: Vec<f64> = export.iter().map(|&pos| $v[pos]).collect();
                nb.start_wait(ctx, &input, &mut ghost);
                par.spmv(&$v, &ghost)
            }};
        }
        let dot = |ctx: &mut mpisim::RankCtx, u: &[f64], v: &[f64]| -> f64 {
            let local: f64 = u.iter().zip(v).map(|(a, b)| a * b).sum();
            ctx.allreduce(&comm, &[local], op_sum_f64)[0]
        };

        let mut x = vec![0.0f64; local_n];
        let mut r = b_local.to_vec();
        let mut p = r.clone();
        let mut rr = dot(ctx, &r, &r);
        let b_norm = dot(ctx, b_local, b_local).sqrt().max(f64::MIN_POSITIVE);
        let mut iters = 0;
        for _ in 0..max_iters {
            if rr.sqrt() / b_norm < tol {
                break;
            }
            iters += 1;
            let ap = spmv!(p);
            let pap = dot(ctx, &p, &ap);
            let alpha = rr / pap;
            for i in 0..local_n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_new = dot(ctx, &r, &r);
            let beta = rr_new / rr;
            rr = rr_new;
            for i in 0..local_n {
                p[i] = r[i] + beta * p[i];
            }
        }
        (x, iters)
    });

    let mut x = Vec::with_capacity(n);
    let mut iters = 0;
    for (xl, it) in results {
        x.extend(xl);
        iters = it;
    }
    (x, iters)
}

#[test]
fn distributed_cg_solves_the_paper_problem() {
    let a = paper_problem(24, 24);
    let x_true = random_vec(a.n_rows(), 21);
    let b = a.spmv(&x_true);
    let (x, iters) = distributed_cg(&a, &b, 12, 4, Protocol::FullNeighbor, 1e-10, 3000);
    let err: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
    assert!(
        norm2(&err) / norm2(&x_true) < 1e-6,
        "CG failed after {iters} iterations, rel err {}",
        norm2(&err) / norm2(&x_true)
    );
    assert!(iters > 0);
}

#[test]
fn all_protocols_agree_bit_for_bit() {
    // The communication protocol must not change the numerics at all:
    // identical iteration counts and identical solutions.
    let a = paper_problem(16, 16);
    let b = a.spmv(&random_vec(a.n_rows(), 22));
    let runs: Vec<(Vec<f64>, usize)> = Protocol::ALL
        .iter()
        .map(|&p| distributed_cg(&a, &b, 8, 4, p, 1e-8, 2000))
        .collect();
    for other in &runs[1..] {
        assert_eq!(
            runs[0].1, other.1,
            "iteration counts differ across protocols"
        );
        for (a, b) in runs[0].0.iter().zip(&other.0) {
            assert_eq!(a, b, "solutions differ bit-for-bit across protocols");
        }
    }
}

#[test]
fn ranks_do_not_change_the_math() {
    // Same solve distributed over different rank counts converges to the
    // same solution (CG trajectories differ only by floating-point
    // summation order in the local dots, which block partitioning keeps
    // identical here because dot ordering is rank-major either way).
    let a = paper_problem(12, 12);
    let x_true = random_vec(a.n_rows(), 23);
    let b = a.spmv(&x_true);
    for ranks in [2, 6, 9] {
        let (x, _) = distributed_cg(&a, &b, ranks, 3, Protocol::PartialNeighbor, 1e-10, 2000);
        let err: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
        assert!(norm2(&err) / norm2(&x_true) < 1e-6, "ranks={ranks}");
    }
}
