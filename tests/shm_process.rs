//! Acceptance tests for the cross-process shared-memory fabric: ranks as
//! real OS processes over `ProcWorld`.
//!
//! `harness = false`: the binary dispatches on its first argument. With no
//! recognized scenario it is the orchestrator — it re-runs itself once per
//! scenario as a subprocess (each scenario process becomes rank 0 of its
//! own process world and re-execs the remaining ranks, which land back in
//! `main` with the same argument). This keeps `ProcWorld::launch`'s
//! one-launch-per-process rule intact while letting one `cargo test`
//! invocation cover all scenarios.
//!
//! Scenarios:
//! - `equivalence`: mixed plain/persistent/collective traffic on 4 process
//!   ranks, byte-identical to the same closure on the thread transport.
//! - `amg`: the paper pipeline — every AMG level's halo exchange through
//!   one `NeighborBatch` session on 8 process ranks, byte-identical to the
//!   thread-transport run (the PR's acceptance criterion).
//! - `death`: a worker process exits mid-epoch without raising any flag
//!   (the `SIGKILL` shape); every surviving rank must abort loudly instead
//!   of deadlocking, and the scenario process must exit nonzero.
//! - `respawn`: a worker dies *before* attaching to the segment
//!   (`MPISIM_ATTACH_FAIL_ONCE`); the driver's attach-barrier supervision
//!   must respawn it within its `MPISIM_RESPAWN_MAX` budget and the world
//!   must complete normally.
//! - `faultkill`: `MPISIM_FAULTS` kills a non-driver rank at a chosen
//!   transport op; the watchdog and pid sweeps must end the world loudly
//!   within the fault plan's deadline.
//!
//! The orchestrator also snapshots `/dev/shm` around the whole suite and
//! fails if any `mpisim-*` segment leaks past its world's lifetime.

use amg::{DistributedHierarchy, Hierarchy, HierarchyOptions};
use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborBatch, Protocol};
use mpisim::{RankCtx, World};
use sparse::gen::diffusion::paper_problem;
use sparse::vector::random_vec;
use sparse::ParCsr;

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("equivalence") => scenario_equivalence(),
        Some("amg") => scenario_amg(),
        Some("death") => scenario_death(),
        Some("respawn") => scenario_respawn(),
        Some("faultkill") => scenario_faultkill(),
        // debug helper, not part of the orchestrated suite: the amg
        // scenario's thread-transport reference on its own
        Some("amgthread") => {
            let setup = AmgSetup::build();
            let batch = setup.batch();
            let r = World::run(AMG_RANKS, |ctx| setup.run(&batch, ctx));
            println!("amgthread ok: {} ranks", r.len());
        }
        // no (or an unrecognized, e.g. a test filter) argument: orchestrate
        _ => orchestrate(),
    }
}

// ---- orchestrator ---------------------------------------------------------

fn orchestrate() {
    let shm_before = shm_segments();
    run_scenario("equivalence", true);
    run_scenario("amg", true);
    // death containment: the world must end LOUDLY (nonzero exit), and
    // within the deadline (a deadlock would hang here forever)
    run_scenario("death", false);
    // pre-attach worker death is healed by respawn, not an abort
    run_scenario("respawn", true);
    // a fault-plan kill of a non-driver rank also ends the world loudly
    run_scenario("faultkill", false);
    // no world may leak its /dev/shm segment — not even the aborted ones
    // (driver-side unlink after the attach barrier + Drop cover them)
    let leaked: Vec<String> = shm_segments()
        .into_iter()
        .filter(|s| !shm_before.contains(s))
        .collect();
    assert!(leaked.is_empty(), "leaked /dev/shm segments: {leaked:?}");
    println!("shm_process: all scenarios passed");
}

/// Current `mpisim-*` entries under `/dev/shm`.
fn shm_segments() -> Vec<String> {
    match std::fs::read_dir("/dev/shm") {
        Ok(rd) => rd
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("mpisim-"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

fn run_scenario(name: &str, expect_success: bool) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(&exe)
        .arg(name)
        .spawn()
        .expect("spawn scenario process");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    let status = loop {
        match child.try_wait().expect("poll scenario process") {
            Some(status) => break status,
            None if std::time::Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("scenario {name} deadlocked (no exit before the deadline)");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    assert_eq!(
        status.success(),
        expect_success,
        "scenario {name}: unexpected exit {status}"
    );
    println!("shm_process: scenario {name} ok ({status})");
}

// ---- equivalence ----------------------------------------------------------

/// Mixed traffic exercising every fabric seam: plain mailbox sends (small
/// and ring-overflowing large), persistent channels, and a collective.
fn traffic(ctx: &mut RankCtx) -> Vec<u64> {
    let comm = ctx.comm_world();
    let n = ctx.size();
    let r = ctx.rank();
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let mut out = Vec::new();

    // plain ring
    ctx.send(&comm, right, 1, &[(r as u64) * 3 + 1]);
    out.extend(ctx.recv::<u64>(&comm, left, 1));

    // oversized plain payload: streams through the bounded mailbox ring
    // in chunks (reassembled receiver-side)
    let big: Vec<u64> = (0..80_000).map(|i| (r as u64) << 32 | i).collect();
    ctx.send(&comm, right, 2, &big);
    let got: Vec<u64> = ctx.recv(&comm, left, 2);
    out.push(got.len() as u64);
    out.push(got[79_999]);

    // persistent channels, two iterations on one registration
    let send = ctx.send_chan_init::<u64>(&comm, right, 3, 1);
    let mut recv = ctx.recv_chan_init::<u64>(&comm, left, 3, 1);
    for it in 0..2u64 {
        send.start_with(ctx, |b| b.push(r as u64 * 100 + it));
        recv.start();
        out.push(recv.wait_with(ctx, |d| d[0]));
    }

    // collective
    out.extend(ctx.allgather(&comm, &[r as u64 * 7 + 5]));
    out
}

fn scenario_equivalence() {
    const N: usize = 4;
    let world = World::spawn_processes(N);
    let mine = world.run(traffic);
    // every process derives the thread-transport reference independently
    // (deterministic), then asserts its own rank INSIDE an epoch, so a
    // mismatch in any process aborts the whole world loudly
    let reference = World::run(N, traffic);
    let rank = world.rank();
    world.run(move |_ctx| {
        assert_eq!(
            mine, reference[rank],
            "rank {rank}: process-world traffic diverged from the thread world"
        );
    });
}

// ---- amg ------------------------------------------------------------------

const AMG_RANKS: usize = 8;

/// The amg_solve example's core at test scale: hierarchy, per-level
/// patterns, one batch holding every level's collective, and the input /
/// operator data. Built ONCE per process and shared across rank closures
/// — a `NeighborBatch` leases its entries' tag namespaces from the
/// process-global `TagSpace`, so thread-world ranks must share one batch
/// (per-rank batches would lease disjoint tag ranges and never match).
/// Each process builds its own identical copy: the leased bases are
/// deterministic in a fresh process, so process ranks agree with each
/// other and with the thread-world reference.
struct AmgSetup {
    h: Hierarchy,
    dist: DistributedHierarchy,
    topo: Topology,
    patterns: Vec<CommPattern>,
    xs: Vec<Vec<f64>>,
}

impl AmgSetup {
    fn build() -> Self {
        let h = Hierarchy::setup(paper_problem(64, 32), HierarchyOptions::default());
        let dist = DistributedHierarchy::build(&h, AMG_RANKS);
        let topo = Topology::block_nodes(AMG_RANKS, 4);
        let patterns = dist.patterns();
        let xs: Vec<Vec<f64>> = dist
            .levels
            .iter()
            .map(|dlvl| random_vec(dlvl.n_rows, dlvl.level as u64))
            .collect();
        Self {
            h,
            dist,
            topo,
            patterns,
            xs,
        }
    }

    /// The one batch holding every level's collective, borrowing `self`
    /// (a `NeighborBatch` borrows its topology and patterns, so it lives
    /// in the caller's frame).
    fn batch(&self) -> NeighborBatch<'_> {
        let mut batch = NeighborBatch::new(&self.topo);
        for pattern in &self.patterns {
            batch = batch.entry(pattern, Backend::Protocol(Protocol::FullNeighbor));
        }
        batch
    }

    /// Every AMG level's halo exchange through one batch session, returning
    /// this rank's per-level SpMV output bits.
    fn run(&self, batch: &NeighborBatch<'_>, ctx: &mut RankCtx) -> Vec<Vec<u64>> {
        let me = ctx.rank();
        let pars: Vec<ParCsr> = self
            .dist
            .levels
            .iter()
            .map(|dlvl| ParCsr::split_all(&self.h.levels[dlvl.level].a, &dlvl.part).swap_remove(me))
            .collect();
        let comm = ctx.comm_world();
        let mut session = batch.init_all(ctx, &comm);
        let inputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .enumerate()
            .map(|(lvl, req)| req.input_index().iter().map(|&i| self.xs[lvl][i]).collect())
            .collect();
        let mut ghosts: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|req| vec![0.0; req.output_index().len()])
            .collect();
        session.start_all(ctx, &inputs);
        let mut ys: Vec<Vec<u64>> = vec![Vec::new(); session.len()];
        while session.in_flight() > 0 {
            let lvl = session.wait_any(ctx, &mut ghosts);
            let range = self.dist.levels[lvl].part.range(me);
            ys[lvl] = pars[lvl]
                .spmv(&self.xs[lvl][range], &ghosts[lvl])
                .iter()
                .map(|v| v.to_bits())
                .collect();
        }
        ys
    }
}

fn scenario_amg() {
    let setup = AmgSetup::build();
    let batch = setup.batch();
    let world = World::spawn_processes(AMG_RANKS);
    let mine = world.run(|ctx| setup.run(&batch, ctx));
    let reference = World::run(AMG_RANKS, |ctx| setup.run(&batch, ctx));
    let rank = world.rank();
    world.run(move |_ctx| {
        for (lvl, (got, want)) in mine.iter().zip(&reference[rank]).enumerate() {
            assert_eq!(
                got, want,
                "rank {rank} level {lvl}: process-world SpMV diverged from the thread world"
            );
        }
    });
}

// ---- death ----------------------------------------------------------------

fn scenario_death() {
    const N: usize = 4;
    let world = World::spawn_processes(N);
    world.run(|ctx| {
        let comm = ctx.comm_world();
        if ctx.rank() == 2 {
            // die WITHOUT unwinding: no panic hook, no fabric flag — the
            // shape a SIGKILL leaves behind. Rank 0's watchdog and the
            // peers' pid sweeps must turn this into loud aborts.
            std::process::exit(7);
        }
        // everyone else blocks on traffic rank 2 will never send
        let _: Vec<u64> = ctx.recv(&comm, 2, 9);
        unreachable!("rank {} completed a recv from a dead rank", ctx.rank());
    });
    unreachable!("the epoch with a dead rank reported success");
}

// ---- respawn --------------------------------------------------------------

/// Worker rank 2 exits before storing its pid slot (invisible to the
/// fabric's death detection); the driver's attach-barrier supervision must
/// respawn it and the healed world must then run real traffic correctly.
fn scenario_respawn() {
    const N: usize = 4;
    // the marker must be stable across the driver AND every (re-exec'd)
    // worker, so only the first process of the scenario may choose it —
    // workers inherit the driver's value through their environment
    if std::env::var("MPISIM_ATTACH_FAIL_ONCE").is_err() {
        let marker =
            std::env::temp_dir().join(format!("mpisim-attach-fail-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        std::env::set_var("MPISIM_ATTACH_FAIL_ONCE", format!("2:{}", marker.display()));
    }
    let world = World::spawn_processes(N);
    let mine = world.run(traffic);
    let reference = World::run(N, traffic);
    let rank = world.rank();
    world.run(move |_ctx| {
        assert_eq!(
            mine, reference[rank],
            "rank {rank}: traffic diverged after a worker respawn"
        );
    });
    if world.rank() == 0 {
        let spec = std::env::var("MPISIM_ATTACH_FAIL_ONCE").expect("hook spec");
        let marker = spec.split_once(':').expect("rank:path spec").1.to_string();
        assert!(
            std::fs::metadata(&marker).is_ok(),
            "the pre-attach failure never fired (marker {marker} missing)"
        );
        let _ = std::fs::remove_file(marker);
    }
}

// ---- faultkill ------------------------------------------------------------

/// `MPISIM_FAULTS` kills worker rank 2 at its 5th counted transport op.
/// Every process of the world (driver and workers alike) parses the same
/// spec from the environment, so the kill replays identically; the
/// watchdog and peer pid sweeps must end the epoch loudly well inside the
/// plan's deadline.
fn scenario_faultkill() {
    const N: usize = 4;
    if std::env::var("MPISIM_FAULTS").is_err() {
        std::env::set_var("MPISIM_FAULTS", "5:kill=2@5,deadline=20000");
    }
    let world = World::spawn_processes(N);
    world.run(|ctx| {
        let comm = ctx.comm_world();
        for it in 0..16u64 {
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(&comm, right, it, &[ctx.rank() as u64 + it]);
            let _: Vec<u64> = ctx.recv(&comm, left, it);
        }
        unreachable!("rank {} outlived the fault plan's kill", ctx.rank());
    });
    unreachable!("the epoch with a killed rank reported success");
}
