//! Acceptance suite for the async solve service (`make test-serve`).
//!
//! Three contracts from DESIGN.md §12, each exercised end to end on the
//! warm pool:
//!
//! * **Equivalence** — K jobs driven concurrently produce byte-identical
//!   results to the same K jobs driven one at a time, and both match the
//!   serial reference replay, on every fabric.
//! * **Tenant isolation** — a seeded `kill=` fault that takes down one
//!   tenant mid-epoch fails *that* job with an attributed error while
//!   every surviving tenant's result stays byte-identical to its solo
//!   run.
//! * **Deadline attribution** — a wedged tenant trips the wait deadline
//!   and the resulting per-job errors name the jobs that were running on
//!   the parked rank.

use std::f64::consts::FRAC_PI_4;
use std::sync::Arc;
use std::time::Duration;

use amg::{Hierarchy, HierarchyOptions, JacobiJob};
use locality::Topology;
use mpi_advance::{CommPattern, EntryId, NeighborRequest};
use mpisim::{FaultPlan, World, WorldPool};
use proptest::prelude::*;
use service::{JobLogic, JobReport, JobSpec, RankState, SolveService};
use sparse::gen::diffusion_2d_7pt;

const RANKS: usize = 4;

fn topo() -> Topology {
    Topology::block_nodes(RANKS, 2)
}

/// A small AMG hierarchy plus K relaxation jobs with distinct right-hand
/// sides — the standard multi-tenant workload for this suite.
fn tenant_jobs(k: usize) -> Vec<Arc<JacobiJob>> {
    let a = diffusion_2d_7pt(16, 8, 0.001, FRAC_PI_4);
    let n = a.n_rows();
    let h = Hierarchy::setup(a, HierarchyOptions::default());
    (0..k)
        .map(|j| {
            let seed = 0.11 + 0.17 * j as f64;
            let rhs: Vec<f64> = (0..n).map(|i| (seed * i as f64).cos()).collect();
            Arc::new(JacobiJob::relaxation(&h, RANKS, &rhs, 0.8, 5))
        })
        .collect()
}

fn submit_all(svc: &mut SolveService, jobs: &[Arc<JacobiJob>]) {
    for (k, j) in jobs.iter().enumerate() {
        svc.submit(JobSpec::new(
            format!("tenant-{k}"),
            topo(),
            Arc::clone(j) as Arc<dyn JobLogic>,
        ));
    }
}

fn expect_ok(reports: &[JobReport], jobs: &[Arc<JacobiJob>], label: &str) {
    assert_eq!(reports.len(), jobs.len(), "{label}");
    for (k, rep) in reports.iter().enumerate() {
        let got = rep
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{label}: job {k} failed: {e}"));
        assert_eq!(got, &jobs[k].reference_results(), "{label}: tenant {k}");
    }
}

/// K jobs overlapped on one warm pool == the same K jobs driven
/// sequentially == the serial reference, byte for byte, on all three
/// fabrics.
#[test]
fn concurrent_jobs_match_sequential_and_reference() {
    let jobs = tenant_jobs(4);
    type PoolCtor = fn(usize) -> WorldPool;
    let fabrics: [(&str, PoolCtor); 3] = [
        ("thread", World::pool),
        ("shm", World::pool_shm),
        ("sock", World::pool_sock),
    ];
    for (name, mk_pool) in fabrics {
        let mut conc = SolveService::with_pool(mk_pool(RANKS));
        submit_all(&mut conc, &jobs);
        let concurrent = conc.run_pending();
        expect_ok(&concurrent, &jobs, &format!("{name}/concurrent"));

        let mut seq = SolveService::with_pool(mk_pool(RANKS)).max_concurrent(1);
        submit_all(&mut seq, &jobs);
        let sequential = seq.run_pending();
        expect_ok(&sequential, &jobs, &format!("{name}/sequential"));

        for (c, s) in concurrent.iter().zip(&sequential) {
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                s.outcome.as_ref().unwrap(),
                "{name}: overlap must not change bytes"
            );
        }
    }
}

/// The service outlives its epochs: the same warm pool accepts a second
/// round of submissions, and dup'd communicator ids never collide across
/// epochs.
#[test]
fn warm_pool_accepts_successive_rounds() {
    let jobs = tenant_jobs(2);
    let mut svc = SolveService::new(RANKS);
    for round in 0..3 {
        submit_all(&mut svc, &jobs);
        expect_ok(&svc.run_pending(), &jobs, &format!("round {round}"));
    }
}

/// Seeded fault: rank 1 dies at its nth transport operation. Scanning
/// nth moves the kill across tenants' traffic; wherever it lands, the
/// dead tenant's report is attributed and every surviving tenant is
/// byte-identical to its solo run. At least one nth in the scan must
/// actually split the tenants (some killed, some survivors) for the
/// isolation claim to be exercised.
#[test]
fn kill_fails_one_tenant_and_spares_the_rest() {
    let jobs = tenant_jobs(3);
    let mut saw_split = false;
    for nth in [40, 80, 120, 160] {
        let plan = FaultPlan::seeded(7).kill(1, nth);
        let mut svc = SolveService::with_pool(World::pool_with_faults(RANKS, plan));
        submit_all(&mut svc, &jobs);
        let reports = svc.run_pending();
        let failed: Vec<usize> = (0..jobs.len())
            .filter(|&k| reports[k].outcome.is_err())
            .collect();
        if !failed.is_empty() && failed.len() < jobs.len() {
            saw_split = true;
        }
        for (k, rep) in reports.iter().enumerate() {
            match &rep.outcome {
                Ok(got) => assert_eq!(
                    got,
                    &jobs[k].reference_results(),
                    "nth={nth}: surviving tenant {k} must be byte-identical to solo"
                ),
                Err(e) => {
                    assert!(
                        e.message.contains("rank 1") || e.message.contains("rank 1's"),
                        "nth={nth}: failure must be attributed to the dead rank: {e}"
                    );
                    assert!(
                        e.ranks.contains(&0) || e.ranks.contains(&1),
                        "nth={nth}: error must carry reporting ranks: {:?}",
                        e.ranks
                    );
                }
            }
        }
    }
    assert!(
        saw_split,
        "the nth scan never split the tenants; isolation was not exercised"
    );
}

/// Kill containment under locality-aware protocols. With 8 ranks at 4
/// per node, [`service::JobSpec`]'s default `Backend::Auto` plans
/// aggregated protocols whose local-gather steps block *synchronously*
/// inside a task's poll — a rank stuck there can never see a cancel
/// token, because its scheduler never regains control. Its only way out
/// is the transport death flag, which is why absorption is per rank:
/// the failing rank absorbing the flag for itself must not steal the
/// abort from peers still blocked on the dead tenant's traffic.
/// (Regression: this exact shape used to hang the epoch forever.)
#[test]
fn kill_is_contained_under_locality_protocols() {
    const N: usize = 8;
    let topo = Topology::block_nodes(N, 4);
    let a = diffusion_2d_7pt(24, 12, 0.001, FRAC_PI_4);
    let n = a.n_rows();
    let h = Hierarchy::setup(a, HierarchyOptions::default());
    let jobs: Vec<Arc<JacobiJob>> = (0..6)
        .map(|j| {
            let seed = 0.11 + 0.17 * j as f64;
            let rhs: Vec<f64> = (0..n).map(|i| (seed * i as f64).cos()).collect();
            Arc::new(JacobiJob::relaxation(&h, N, &rhs, 0.8, 4))
        })
        .collect();
    let mut saw_split = false;
    for nth in [20, 40, 60, 90] {
        let plan = FaultPlan::seeded(7).kill(1, nth);
        let mut svc = SolveService::with_pool(World::pool_with_faults(N, plan)).max_concurrent(3);
        for (k, j) in jobs.iter().enumerate() {
            svc.submit(JobSpec::new(
                format!("tenant-{k}"),
                topo.clone(),
                Arc::clone(j) as Arc<dyn JobLogic>,
            ));
        }
        // the real regression check is that run_pending RETURNS — the
        // epoch used to hang with a peer stuck in a synchronous
        // local-gather recv that no cancel token could reach
        let reports = svc.run_pending();
        let mut survivors = 0;
        for (k, rep) in reports.iter().enumerate() {
            match &rep.outcome {
                Ok(got) => {
                    assert_eq!(
                        got,
                        &jobs[k].reference_results(),
                        "nth={nth}: surviving tenant {k} must be byte-identical to solo"
                    );
                    survivors += 1;
                }
                Err(e) => assert!(
                    e.message.contains("rank 1"),
                    "nth={nth}: failure must be attributed to the dead rank: {e}"
                ),
            }
        }
        if survivors > 0 && survivors < jobs.len() {
            saw_split = true;
        }
    }
    assert!(
        saw_split,
        "no nth in the scan split the tenants; isolation was not exercised"
    );
}

// ---------------------------------------------------------------------
// deadline attribution: a wedged tenant names itself in the dump
// ---------------------------------------------------------------------

/// Wraps a job so one rank wedges (sleeps) inside its first input
/// callback — long enough to trip the epoch's wait deadline on every
/// other rank.
struct StallJob {
    inner: Arc<JacobiJob>,
    stall_rank: usize,
    stall: Duration,
}

struct StallState {
    inner: Box<dyn RankState>,
    stall: Option<Duration>,
}

impl JobLogic for StallJob {
    fn patterns(&self) -> Vec<CommPattern> {
        JobLogic::patterns(&*self.inner)
    }
    fn iters(&self) -> usize {
        JobLogic::iters(&*self.inner)
    }
    fn rank_state(&self, rank: usize) -> Box<dyn RankState> {
        Box::new(StallState {
            inner: JobLogic::rank_state(&*self.inner, rank),
            stall: (rank == self.stall_rank).then_some(self.stall),
        })
    }
}

impl RankState for StallState {
    fn input(&mut self, iter: usize, e: EntryId, req: &dyn NeighborRequest) -> Vec<f64> {
        if let Some(d) = self.stall.take() {
            std::thread::sleep(d);
        }
        self.inner.input(iter, e, req)
    }
    fn absorb(&mut self, iter: usize, e: EntryId, req: &dyn NeighborRequest, output: &[f64]) {
        self.inner.absorb(iter, e, req, output)
    }
    fn finish(self: Box<Self>) -> Vec<f64> {
        self.inner.finish()
    }
}

/// With one tenant wedged on rank 3 past the wait deadline, the parked
/// ranks dump every job still running there — the per-job errors carry
/// the job names, so the operator can see exactly which tenants were in
/// flight.
#[test]
fn deadline_dump_attributes_running_jobs() {
    let jobs = tenant_jobs(2);
    let stalled = Arc::new(StallJob {
        inner: Arc::clone(&jobs[0]),
        stall_rank: RANKS - 1,
        stall: Duration::from_millis(1500),
    });
    let plan = FaultPlan::seeded(1).deadline_ms(300);
    let mut svc = SolveService::with_pool(World::pool_with_faults(RANKS, plan));
    svc.submit(JobSpec::new(
        "tenant-wedged",
        topo(),
        stalled as Arc<dyn JobLogic>,
    ));
    svc.submit(JobSpec::new(
        "tenant-bystander",
        topo(),
        Arc::clone(&jobs[1]) as Arc<dyn JobLogic>,
    ));
    let reports = svc.run_pending();
    let wedged = reports[0].outcome.as_ref().unwrap_err();
    assert!(
        wedged.message.contains("parked") || wedged.message.contains("cancelled"),
        "wedged tenant's error must come from the park/cancel path: {wedged}"
    );
    // at least one rank's dump names the in-flight jobs
    let dumped: Vec<&service::JobError> = reports
        .iter()
        .filter_map(|r| r.outcome.as_ref().err())
        .collect();
    assert!(
        dumped
            .iter()
            .any(|e| e.message.contains("tenant-wedged") && e.message.contains("parked")),
        "no deadline dump attributed the wedged tenant by name: {dumped:?}"
    );
}

// ---------------------------------------------------------------------
// dup'd-communicator isolation, property-tested
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two tenants running the *same* pattern with the *same* tags on
    /// dup'd communicators never cross traffic: each result is
    /// byte-identical to the job's solo run, across problem shapes.
    #[test]
    fn dup_comm_isolation(w in 8usize..20, h in 4usize..10, sweeps in 1usize..6) {
        let a = diffusion_2d_7pt(w, h, 0.001, FRAC_PI_4);
        let n = a.n_rows();
        let hier = Hierarchy::setup(a, HierarchyOptions::default());
        let rhs: Vec<f64> = (0..n).map(|i| (0.11 * i as f64).cos()).collect();
        let job = Arc::new(JacobiJob::relaxation(&hier, RANKS, &rhs, 0.8, sweeps));
        let reference = job.reference_results();

        // solo run
        let mut solo = SolveService::new(RANKS);
        solo.submit(JobSpec::new("solo", topo(), Arc::clone(&job) as Arc<dyn JobLogic>));
        let solo_out = solo.run_pending().remove(0).outcome.unwrap();
        prop_assert_eq!(&solo_out, &reference);

        // two identical tenants, overlapped on dup'd comms
        let mut both = SolveService::new(RANKS);
        for k in 0..2 {
            both.submit(JobSpec::new(
                format!("twin-{k}"),
                topo(),
                Arc::clone(&job) as Arc<dyn JobLogic>,
            ));
        }
        for rep in both.run_pending() {
            prop_assert_eq!(rep.outcome.unwrap(), solo_out.clone());
        }
    }
}
