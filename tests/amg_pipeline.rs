//! Integration of the full paper pipeline: AMG hierarchy → per-level
//! patterns → neighborhood collectives, checking the qualitative claims of
//! the evaluation section at test scale.

use amg::{solve, DistributedHierarchy, Hierarchy, HierarchyOptions, SolveOptions};
use locality::Topology;
use mpi_advance::analytic::{init_time, iteration_time};
use mpi_advance::{CommPattern, PlanStats, Protocol};
use perfmodel::LocalityModel;
use sparse::gen::diffusion::paper_problem;
use sparse::vector::random_vec;

fn hierarchy() -> Hierarchy {
    Hierarchy::setup(paper_problem(64, 32), HierarchyOptions::default())
}

fn patterns(h: &Hierarchy, ranks: usize) -> Vec<CommPattern> {
    DistributedHierarchy::build(h, ranks)
        .levels
        .iter()
        .map(|l| l.pattern())
        .collect()
}

#[test]
fn solver_converges_on_paper_problem() {
    let h = hierarchy();
    let a = &h.levels[0].a;
    let x_true = random_vec(a.n_rows(), 0);
    let b = a.spmv(&x_true);
    let res = solve(
        &h,
        &b,
        &SolveOptions {
            max_iters: 200,
            ..Default::default()
        },
    );
    assert!(res.converged, "AMG failed on the paper problem");
}

#[test]
fn aggregation_trades_global_for_local_on_every_busy_level() {
    // Figures 8/9 shape at test scale.
    let h = hierarchy();
    let topo = Topology::block_nodes(32, 8);
    for pattern in patterns(&h, 32) {
        if pattern.total_msgs() == 0 {
            continue;
        }
        let st = PlanStats::of(&Protocol::StandardHypre.plan(&pattern, &topo));
        let fu = PlanStats::of(&Protocol::FullNeighbor.plan(&pattern, &topo));
        assert!(fu.total_global_msgs <= st.total_global_msgs);
    }
}

#[test]
fn dedup_reduces_volume_on_communication_heavy_levels() {
    // Figure 10 shape: the rotated anisotropic stencil duplicates boundary
    // values across destinations, so dedup must win somewhere.
    let h = hierarchy();
    let topo = Topology::block_nodes(32, 8);
    let mut any_reduction = false;
    for pattern in patterns(&h, 32) {
        let pa = PlanStats::of(&Protocol::PartialNeighbor.plan(&pattern, &topo));
        let fu = PlanStats::of(&Protocol::FullNeighbor.plan(&pattern, &topo));
        assert!(fu.total_global_bytes <= pa.total_global_bytes);
        if fu.total_global_bytes < pa.total_global_bytes {
            any_reduction = true;
        }
    }
    assert!(any_reduction, "dedup never reduced inter-region volume");
}

#[test]
fn optimized_wins_where_standard_peaks() {
    // Figure 11 shape: at the level where standard communication is most
    // expensive (the communication-dominated middle of the hierarchy),
    // aggregation must beat it. Needs a hierarchy deep enough for the
    // middle levels to reach the many-messages-per-process regime.
    let h = Hierarchy::setup(paper_problem(128, 64), HierarchyOptions::default());
    let ranks = 64;
    let topo = Topology::block_nodes(ranks, 16);
    let model = LocalityModel::lassen();
    let times: Vec<(f64, f64)> = patterns(&h, ranks)
        .iter()
        .map(|p| {
            let t_std = iteration_time(
                &Protocol::StandardHypre.plan(p, &topo),
                &topo,
                &model,
                false,
            )
            .total;
            let t_ful =
                iteration_time(&Protocol::FullNeighbor.plan(p, &topo), &topo, &model, true).total;
            (t_std, t_ful)
        })
        .collect();
    let peak = times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .unwrap()
        .0;
    let (t_std, t_ful) = times[peak];
    assert!(
        t_ful < t_std,
        "fully optimized ({t_ful:.2e}) should beat standard ({t_std:.2e}) at peak level {peak}"
    );
}

#[test]
fn init_cost_ordering_holds_over_the_hierarchy() {
    // Figure 7's intercept ordering: standard < full < partial.
    let h = hierarchy();
    let topo = Topology::block_nodes(32, 8);
    let model = LocalityModel::lassen();
    let mut std_total = 0.0;
    let mut partial_total = 0.0;
    let mut full_total = 0.0;
    for pattern in patterns(&h, 32) {
        std_total += init_time(
            &Protocol::StandardNeighbor.plan(&pattern, &topo),
            &topo,
            &model,
        );
        partial_total += init_time(
            &Protocol::PartialNeighbor.plan(&pattern, &topo),
            &topo,
            &model,
        );
        full_total += init_time(&Protocol::FullNeighbor.plan(&pattern, &topo), &topo, &model);
    }
    assert!(
        std_total < full_total,
        "std {std_total} < full {full_total}"
    );
    assert!(
        full_total < partial_total,
        "full {full_total} < partial {partial_total}"
    );
}

#[test]
fn coarse_levels_engage_few_ranks() {
    // §4.1: "the coarsest levels are small enough in dimension that few
    // processes participate in communication".
    let h = hierarchy();
    let dist = DistributedHierarchy::build(&h, 64);
    let coarsest = dist.levels.last().unwrap();
    assert!(coarsest.active_ranks() < 64);
}
