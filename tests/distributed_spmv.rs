//! End-to-end integration: distributed SpMV through every protocol on the
//! simulated MPI runtime must reproduce the serial operator exactly, for
//! grid and random matrices across partitionings and region sizes.

use locality::Topology;
use mpi_advance::{CommPattern, NeighborAlltoallv, Protocol};
use mpisim::World;
use sparse::gen::diffusion::paper_problem;
use sparse::gen::{laplace_2d_5pt, random_spd};
use sparse::vector::random_vec;
use sparse::{build_comm_pkgs, Csr, ParCsr, Partition};

/// Distributed SpMV of `a` over `ranks` ranks with `ppn` ranks per node,
/// using `protocol` for the halo exchange; asserts equality with serial.
fn check_spmv(a: &Csr, ranks: usize, ppn: usize, protocol: Protocol, seed: u64) {
    let part = Partition::block(a.n_rows(), ranks);
    let pkgs = build_comm_pkgs(a, &part);
    let pattern = CommPattern::from_comm_pkgs(&pkgs);
    let topo = Topology::block_nodes(ranks, ppn);
    let coll = NeighborAlltoallv::new(&pattern, &topo)
        .protocol(protocol)
        .tag_base(7);
    let pars: Vec<ParCsr> = ParCsr::split_all(a, &part);
    let x = random_vec(a.n_rows(), seed);
    let serial = a.spmv(&x);

    let results = World::run(ranks, |ctx| {
        let comm = ctx.comm_world();
        let me = ctx.rank();
        let mut nb = coll.init(ctx, &comm);
        let input: Vec<f64> = nb.input_index().iter().map(|&i| x[i]).collect();
        let mut ghost = vec![0.0; nb.output_index().len()];
        nb.start_wait(ctx, &input, &mut ghost);
        // ghost values arrive sorted by global index — exactly the order of
        // col_map_offd
        assert_eq!(nb.output_index(), pars[me].col_map_offd.as_slice());
        pars[me].spmv(&x[part.range(me)], &ghost)
    });

    let mut y = Vec::with_capacity(a.n_rows());
    for r in results {
        y.extend(r);
    }
    for (i, (got, want)) in y.iter().zip(&serial).enumerate() {
        assert!(
            (got - want).abs() < 1e-12,
            "row {i} mismatch under {protocol}: {got} vs {want}"
        );
    }
}

#[test]
fn laplacian_all_protocols() {
    let a = laplace_2d_5pt(16, 16);
    for protocol in Protocol::ALL {
        check_spmv(&a, 8, 4, protocol, 1);
    }
}

#[test]
fn rotated_anisotropic_all_protocols() {
    let a = paper_problem(32, 16);
    for protocol in Protocol::ALL {
        check_spmv(&a, 16, 4, protocol, 2);
    }
}

#[test]
fn random_irregular_all_protocols() {
    // irregular (non-grid) sparsity exercises many-destination fan-outs
    let a = random_spd(300, 12, 99);
    for protocol in Protocol::ALL {
        check_spmv(&a, 12, 4, protocol, 3);
    }
}

#[test]
fn uneven_partitions_and_region_sizes() {
    let a = paper_problem(20, 13); // 260 rows, not divisible by ranks
    for (ranks, ppn) in [(7, 3), (9, 4), (5, 5), (11, 2)] {
        check_spmv(&a, ranks, ppn, Protocol::FullNeighbor, ranks as u64);
    }
}

#[test]
fn more_ranks_than_coarse_rows() {
    // ranks outnumber matrix rows: some ranks own nothing
    let a = laplace_2d_5pt(3, 3);
    check_spmv(&a, 16, 4, Protocol::FullNeighbor, 4);
    check_spmv(&a, 16, 4, Protocol::StandardNeighbor, 5);
}

#[test]
fn repeated_iterations_with_fresh_values() {
    // persistent requests must transport *current* buffer contents
    let a = laplace_2d_5pt(12, 12);
    let ranks = 6;
    let part = Partition::block(a.n_rows(), ranks);
    let pkgs = build_comm_pkgs(&a, &part);
    let pattern = CommPattern::from_comm_pkgs(&pkgs);
    let topo = Topology::block_nodes(ranks, 3);
    let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::PartialNeighbor);
    let pars: Vec<ParCsr> = ParCsr::split_all(&a, &part);

    let iters = 5u64;
    let results = World::run(ranks, |ctx| {
        let comm = ctx.comm_world();
        let me = ctx.rank();
        let mut nb = coll.init(ctx, &comm);
        let mut outs = Vec::new();
        for it in 0..iters {
            let x = random_vec(a.n_rows(), it);
            let input: Vec<f64> = nb.input_index().iter().map(|&i| x[i]).collect();
            let mut ghost = vec![0.0; nb.output_index().len()];
            nb.start_wait(ctx, &input, &mut ghost);
            outs.push(pars[me].spmv(&x[part.range(me)], &ghost));
        }
        outs
    });

    for it in 0..iters {
        let x = random_vec(a.n_rows(), it);
        let serial = a.spmv(&x);
        let mut y = Vec::new();
        for r in &results {
            y.extend_from_slice(&r[it as usize]);
        }
        for (got, want) in y.iter().zip(&serial) {
            assert!((got - want).abs() < 1e-12, "iteration {it} mismatch");
        }
    }
}
