//! Acceptance tests for the socket fabric: ranks as real OS processes over
//! `SockWorld`, meshed with stream sockets (UDS by default, TCP on demand).
//!
//! `harness = false`: the binary dispatches on its first argument. With no
//! recognized scenario it is the orchestrator — it re-runs itself once per
//! scenario as a subprocess (each scenario process becomes rank 0 of its
//! own socket world and re-execs the remaining ranks, which land back in
//! `main` with the same argument). This keeps `SockWorld::launch`'s
//! one-launch-per-process rule intact while letting one `cargo test`
//! invocation cover all scenarios.
//!
//! Scenarios:
//! - `equivalence`: mixed plain/persistent/collective traffic on 4 process
//!   ranks over the default UDS mesh, byte-identical to the same closure
//!   on the thread transport.
//! - `tcp`: the same traffic with `MPISIM_SOCK_ADDR=127.0.0.1:0`, so the
//!   rendezvous AND the whole mesh run over TCP — the cross-host shape.
//! - `drop`: `MPISIM_FAULTS` severs live inter-process links mid-epoch
//!   (80‰ of deposits). Every severed link must reconnect and resume from
//!   its replay buffer; the run must stay byte-identical to the thread
//!   reference — the transient half of the PR's acceptance criterion.
//! - `death`: a worker process exits mid-epoch without raising any flag
//!   (the `SIGKILL` shape); every surviving rank must abort loudly instead
//!   of deadlocking, and the scenario process must exit nonzero — the
//!   permanent half of the acceptance criterion.
//! - `faultkill`: `MPISIM_FAULTS` kills a non-driver rank at a chosen
//!   transport op; the watchdog and dead-peer link probes must end the
//!   world loudly within the fault plan's deadline.
//!
//! The orchestrator also snapshots the temp directory around the whole
//! suite and fails if any `mpisim-sock-*` UDS listener path leaks past its
//! world's lifetime — not even the aborted worlds may leave one behind.

use mpisim::{RankCtx, World};

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("equivalence") => scenario_equivalence(),
        Some("tcp") => scenario_tcp(),
        Some("drop") => scenario_drop(),
        Some("death") => scenario_death(),
        Some("faultkill") => scenario_faultkill(),
        // no (or an unrecognized, e.g. a test filter) argument: orchestrate
        _ => orchestrate(),
    }
}

// ---- orchestrator ---------------------------------------------------------

fn orchestrate() {
    let uds_before = uds_paths();
    run_scenario("equivalence", true);
    run_scenario("tcp", true);
    // transient faults: severed links must resume invisibly
    run_scenario("drop", true);
    // death containment: the world must end LOUDLY (nonzero exit), and
    // within the deadline (a deadlock would hang here forever)
    run_scenario("death", false);
    // a fault-plan kill of a non-driver rank also ends the world loudly
    run_scenario("faultkill", false);
    // no world may leak its UDS listener path — not even the aborted ones
    // (cleanup_listener on every exit path + Drop cover them)
    let leaked: Vec<String> = uds_paths()
        .into_iter()
        .filter(|p| !uds_before.contains(p))
        .collect();
    assert!(leaked.is_empty(), "leaked UDS listener paths: {leaked:?}");
    println!("sock_process: all scenarios passed");
}

/// Current `mpisim-sock-*` entries under the temp directory (the socket
/// fabric's auto-assigned UDS listener paths).
fn uds_paths() -> Vec<String> {
    match std::fs::read_dir(std::env::temp_dir()) {
        Ok(rd) => rd
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("mpisim-sock-"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

fn run_scenario(name: &str, expect_success: bool) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(&exe)
        .arg(name)
        .spawn()
        .expect("spawn scenario process");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    let status = loop {
        match child.try_wait().expect("poll scenario process") {
            Some(status) => break status,
            None if std::time::Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("scenario {name} deadlocked (no exit before the deadline)");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    assert_eq!(
        status.success(),
        expect_success,
        "scenario {name}: unexpected exit {status}"
    );
    println!("sock_process: scenario {name} ok ({status})");
}

// ---- equivalence ----------------------------------------------------------

/// Mixed traffic exercising every fabric seam: plain mailbox sends (small
/// and large), persistent channels riding `K_CHAN` frames, and a
/// collective.
fn traffic(ctx: &mut RankCtx) -> Vec<u64> {
    let comm = ctx.comm_world();
    let n = ctx.size();
    let r = ctx.rank();
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let mut out = Vec::new();

    // plain ring
    ctx.send(&comm, right, 1, &[(r as u64) * 3 + 1]);
    out.extend(ctx.recv::<u64>(&comm, left, 1));

    // large plain payload: spans many wire frames' worth of data and
    // (under the drop scenario) straddles link severs mid-message
    let big: Vec<u64> = (0..80_000).map(|i| (r as u64) << 32 | i).collect();
    ctx.send(&comm, right, 2, &big);
    let got: Vec<u64> = ctx.recv(&comm, left, 2);
    out.push(got.len() as u64);
    out.push(got[79_999]);

    // persistent channels, two iterations on one registration
    let send = ctx.send_chan_init::<u64>(&comm, right, 3, 1);
    let mut recv = ctx.recv_chan_init::<u64>(&comm, left, 3, 1);
    for it in 0..2u64 {
        send.start_with(ctx, |b| b.push(r as u64 * 100 + it));
        recv.start();
        out.push(recv.wait_with(ctx, |d| d[0]));
    }

    // collective
    out.extend(ctx.allgather(&comm, &[r as u64 * 7 + 5]));
    out
}

/// The shared body of every should-succeed scenario: run `traffic` on a
/// 4-rank socket world, derive the thread-transport reference
/// independently in every process (deterministic), then assert this
/// process's rank INSIDE an epoch, so a mismatch in any process aborts
/// the whole world loudly.
fn assert_traffic_matches_thread_world(what: &str) {
    const N: usize = 4;
    let world = World::spawn_sock(N);
    let mine = world.run(traffic);
    let reference = World::run(N, traffic);
    let rank = world.rank();
    world.run(move |_ctx| {
        assert_eq!(
            mine, reference[rank],
            "rank {rank}: {what} traffic diverged from the thread world"
        );
    });
}

fn scenario_equivalence() {
    assert_traffic_matches_thread_world("socket-world");
}

// ---- tcp ------------------------------------------------------------------

/// The same equivalence bar over TCP: the driver binds `127.0.0.1:0`, and
/// workers match its address family, so rendezvous and mesh both run over
/// TCP streams — the shape the fabric takes across hosts.
fn scenario_tcp() {
    // only the first process of the scenario may choose the bind spec: in
    // workers the variable already carries the driver's concrete address
    if std::env::var("MPISIM_SOCK_ADDR").is_err() {
        std::env::set_var("MPISIM_SOCK_ADDR", "127.0.0.1:0");
    }
    assert_traffic_matches_thread_world("TCP socket-world");
}

// ---- drop -----------------------------------------------------------------

/// `MPISIM_FAULTS` severs live sockets under real traffic in every process
/// of the world (each deposit has an 80‰ chance of tearing down its link
/// first). The connector side must redial with backoff, resume from the
/// replay buffer, and deliver exactly once — byte-identical results prove
/// the reconnect machinery is semantically invisible. The thread-world
/// reference parses the same spec, but `sever_link` is a no-op there, so
/// it computes the undisturbed answer.
fn scenario_drop() {
    if std::env::var("MPISIM_FAULTS").is_err() {
        std::env::set_var("MPISIM_FAULTS", "11:drop=80,deadline=60000");
    }
    assert_traffic_matches_thread_world("link-dropping socket-world");
}

// ---- death ----------------------------------------------------------------

fn scenario_death() {
    const N: usize = 4;
    let world = World::spawn_sock(N);
    world.run(|ctx| {
        let comm = ctx.comm_world();
        if ctx.rank() == 2 {
            // die WITHOUT unwinding: no panic hook, no K_DEATH broadcast —
            // the shape a SIGKILL leaves behind. Rank 0's watchdog and the
            // peers' heartbeat-fed link probes must turn the silence into
            // loud aborts.
            std::process::exit(7);
        }
        // everyone else blocks on traffic rank 2 will never send
        let _: Vec<u64> = ctx.recv(&comm, 2, 9);
        unreachable!("rank {} completed a recv from a dead rank", ctx.rank());
    });
    unreachable!("the epoch with a dead rank reported success");
}

// ---- faultkill ------------------------------------------------------------

/// `MPISIM_FAULTS` kills worker rank 2 at its 5th counted transport op.
/// Every process of the world (driver and workers alike) parses the same
/// spec from the environment, so the kill replays identically; the
/// watchdog and the peers' dead-link detection must end the epoch loudly
/// well inside the plan's deadline.
fn scenario_faultkill() {
    const N: usize = 4;
    if std::env::var("MPISIM_FAULTS").is_err() {
        std::env::set_var("MPISIM_FAULTS", "5:kill=2@5,deadline=20000");
    }
    let world = World::spawn_sock(N);
    world.run(|ctx| {
        let comm = ctx.comm_world();
        for it in 0..16u64 {
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(&comm, right, it, &[ctx.rank() as u64 + it]);
            let _: Vec<u64> = ctx.recv(&comm, left, it);
        }
        unreachable!("rank {} outlived the fault plan's kill", ctx.rank());
    });
    unreachable!("the epoch with a killed rank reported success");
}
