//! Integration tests for `Backend::Tuned` (DESIGN.md §11): measured
//! protocol selection with a persistent profile cache.
//!
//! The acceptance scenario for the tuner is run end-to-end here: hand
//! `Backend::Auto` a deliberately mis-parameterized cost model so it
//! picks the wrong protocol, then show `Backend::Tuned` — probing on a
//! *modeled* world whose virtual clock charges the true costs —
//! converges to the genuinely fastest protocol within its probe budget,
//! delivering byte-identical values the whole time. A second batch
//! pointed at the same `MPISIM_PROFILE_DIR` must skip probing entirely
//! (the warm-start path), and the probe measurements must land in the
//! process-global refit pool.
//!
//! Modeled worlds make the convergence tests deterministic: probe
//! timings come from `RankCtx::clock`, not wall time, so CI cannot
//! flake on scheduler noise. The three-fabric test runs on real clocks
//! and therefore accepts *any* agreed winner — its assertion is
//! agreement plus byte identity, not a particular choice.

use locality::Topology;
use mpi_advance::{
    choose_protocol, topology_signature, Backend, CommPattern, NeighborAlltoallv, TunePolicy,
};
use mpisim::{RankCtx, World};
use perfmodel::{CostModel, PostalModel};
use std::path::PathBuf;
use std::sync::Arc;

/// The truth: latency-dominated, like a real inter-node fabric. Message
/// count is what hurts, so locality-aware aggregation wins.
const TRUTH_ALPHA: f64 = 5.0e-6;
const TRUTH_BETA: f64 = 2.0e-9;

/// The lie handed to `Backend::Auto`: messages nearly free, so the
/// model ranks the fewest-bytes standard protocol first.
const MIS_ALPHA: f64 = 1.0e-12;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mpi-advance-tuner-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Drive one full iteration and verify every delivered ghost value: the
/// value at global index `i` is `i + it/4`, so a wrong wire schedule (or
/// a candidate swap that dropped a value) shows up immediately.
fn drive_iteration(
    req: &mut Box<dyn mpi_advance::NeighborRequest>,
    ctx: &mut RankCtx,
    it: usize,
) -> bool {
    let shift = it as f64 * 0.25;
    let input: Vec<f64> = req
        .input_index()
        .iter()
        .map(|&i| i as f64 + shift)
        .collect();
    let mut output = vec![f64::NAN; req.output_index().len()];
    req.start_wait(ctx, &input, &mut output);
    req.output_index()
        .iter()
        .zip(&output)
        .all(|(&i, &v)| v == i as f64 + shift)
}

/// The tentpole acceptance test: Auto trusts the lie and picks wrong;
/// Tuned measures on the truth-charging virtual clock and locks in the
/// protocol that is actually fastest, within `probe_iters` iterations.
#[test]
fn tuned_converges_where_auto_is_fooled() {
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let truth = PostalModel::new(TRUTH_ALPHA, TRUTH_BETA);
    let mis = PostalModel::new(MIS_ALPHA, TRUTH_BETA);

    let (auto_choice, _) = choose_protocol(&pattern, &topo, &mis);
    let (truth_choice, _) = choose_protocol(&pattern, &topo, &truth);
    assert_ne!(
        auto_choice, truth_choice,
        "precondition: the mis-model must actually mislead Auto"
    );

    const PROBES: usize = 8;
    let coll = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(
            TunePolicy::default()
                .with_probe_iters(PROBES)
                .with_factor(1.0e12), // admit every protocol to the shortlist
        );

    let obs_before = tuner::observation_count();
    let results = World::run_modeled(topo.clone(), Arc::new(truth) as Arc<dyn CostModel>, |ctx| {
        let comm = ctx.comm_world();
        let mut req = coll.init(ctx, &comm);
        let mut ok = true;
        let mut probing_after = Vec::new();
        for it in 0..PROBES + 2 {
            ok &= drive_iteration(&mut req, ctx, it);
            probing_after.push(req.is_probing());
        }
        (ok, probing_after, req.protocol())
    });

    for (ok, probing_after, winner) in results {
        assert!(ok, "tuned request corrupted values");
        // the decision fires inside start() of iteration PROBES, so the
        // request reports probing through iteration PROBES-1 inclusive
        for (it, &p) in probing_after.iter().enumerate() {
            assert_eq!(p, it < PROBES, "probing flag after iteration {it}");
        }
        assert_eq!(
            winner, truth_choice,
            "tuned winner must be the measured-fastest protocol, \
             not Auto's mis-modeled pick ({auto_choice:?})"
        );
    }
    assert!(
        tuner::observation_count() > obs_before,
        "probe timings must land in the refit pool"
    );
}

/// Warm start: a first batch probes, decides, and publishes; a second,
/// freshly built batch with the same profile directory finds the entry
/// and skips the probe phase entirely.
#[test]
fn profile_cache_warm_start_skips_probing() {
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let truth = PostalModel::new(TRUTH_ALPHA, TRUTH_BETA);
    let mis = PostalModel::new(MIS_ALPHA, TRUTH_BETA);
    let dir = tmpdir("warmstart");

    const PROBES: usize = 4;
    let policy = TunePolicy::default()
        .with_probe_iters(PROBES)
        .with_factor(1.0e12)
        .with_profile_dir(&dir);

    let cold = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(policy.clone());
    let truth_arc: Arc<dyn CostModel> = Arc::new(truth);
    let winners = World::run_modeled(topo.clone(), truth_arc.clone(), |ctx| {
        let comm = ctx.comm_world();
        let mut req = cold.init(ctx, &comm);
        assert!(req.is_probing(), "cold start must probe");
        for it in 0..PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
        assert!(!req.is_probing(), "budget spent, winner locked");
        req.protocol()
    });
    let winner = winners[0];
    assert!(
        winners.iter().all(|&w| w == winner),
        "ranks must agree on one winner"
    );
    assert!(
        std::fs::read_dir(&dir)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false),
        "rank 0 must have published a profile under {dir:?}"
    );

    // A *fresh* builder — new batch, new cache consult — simulating a
    // warmed process pointed at the same MPISIM_PROFILE_DIR.
    let warm = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(policy);
    let ok = World::run_modeled(topo.clone(), truth_arc, |ctx| {
        let comm = ctx.comm_world();
        let mut req = warm.init(ctx, &comm);
        let skipped = !req.is_probing();
        let agreed = req.protocol() == winner;
        let mut values_ok = true;
        for it in 0..2 {
            values_ok &= drive_iteration(&mut req, ctx, it);
        }
        skipped && agreed && values_ok
    });
    assert!(
        ok.into_iter().all(|b| b),
        "warmed batch must skip probing and run the published winner"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte identity through the full probe → decide → steady-state
/// lifecycle on all three fabrics, under real wall-clock timing. Any
/// winner is acceptable; what is pinned is that every rank agrees on it
/// and that every iteration — mid-probe hot-swaps included — delivers
/// exactly the values direct exchange would.
#[test]
fn tuned_lifecycle_is_byte_identical_on_every_fabric() {
    let topo = Topology::block_nodes(8, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    const PROBES: usize = 4;
    let coll = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .tune_policy(
            TunePolicy::default()
                .with_probe_iters(PROBES)
                .with_factor(1.0e12),
        );

    let body = |ctx: &mut RankCtx| {
        let comm = ctx.comm_world();
        let mut req = coll.init(ctx, &comm);
        let mut ok = true;
        for it in 0..PROBES + 4 {
            ok &= drive_iteration(&mut req, ctx, it);
        }
        (ok, req.is_probing(), req.protocol())
    };

    for (fabric, results) in [
        ("thread", World::run(8, body)),
        ("shm", World::run_shm(8, body)),
        ("sock", World::run_sock(8, body)),
    ] {
        let winner = results[0].2;
        for (ok, probing, proto) in results {
            assert!(ok, "[{fabric}] tuned request corrupted values");
            assert!(!probing, "[{fabric}] probe budget spent");
            assert_eq!(proto, winner, "[{fabric}] ranks disagree on winner");
        }
    }
}

/// Spot-checking (`MPISIM_TUNE_RECHECK`): a cached winner the fabric
/// has drifted away from is evicted, not trusted forever. Plant a stale
/// winner by probing on a world whose clock charges the *mis*-model's
/// costs, then re-open the cache on a world charging the truth with a
/// positive recheck budget: the request warm-starts on the stale winner,
/// re-probes, converges to the true winner, and re-publishes — so a
/// third, trust-the-cache consumer sees the corrected entry.
#[test]
fn recheck_evicts_a_stale_cached_winner() {
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let truth = PostalModel::new(TRUTH_ALPHA, TRUTH_BETA);
    let mis = PostalModel::new(MIS_ALPHA, TRUTH_BETA);
    let (stale_choice, _) = choose_protocol(&pattern, &topo, &mis);
    let (truth_choice, _) = choose_protocol(&pattern, &topo, &truth);
    assert_ne!(stale_choice, truth_choice, "precondition: winners differ");
    let dir = tmpdir("recheck");

    const PROBES: usize = 4;
    const WARM: usize = 3;
    let base = TunePolicy::default()
        .with_probe_iters(PROBES)
        .with_factor(1.0e12)
        .with_profile_dir(&dir);

    // plant: probe on the mis-charging world, publishing its winner
    let plant = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(base.clone());
    let mis_arc: Arc<dyn CostModel> = Arc::new(mis);
    let planted = World::run_modeled(topo.clone(), mis_arc, |ctx| {
        let comm = ctx.comm_world();
        let mut req = plant.init(ctx, &comm);
        for it in 0..PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
        req.protocol()
    });
    assert!(planted.iter().all(|&w| w == stale_choice));

    // recheck: warm-start on the stale winner, re-probe on the truth
    let spot = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(base.clone().with_recheck_iters(WARM));
    let truth_arc: Arc<dyn CostModel> = Arc::new(truth);
    let rechecked = World::run_modeled(topo.clone(), truth_arc.clone(), |ctx| {
        let comm = ctx.comm_world();
        let mut req = spot.init(ctx, &comm);
        assert!(req.is_probing(), "a spot-checked hit must not lock in");
        assert_eq!(
            req.protocol(),
            stale_choice,
            "warm-up iterations run the cached winner"
        );
        for it in 0..WARM + PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
        assert!(!req.is_probing(), "recheck budget spent");
        req.protocol()
    });
    assert!(
        rechecked.iter().all(|&w| w == truth_choice),
        "re-probe must evict the stale winner: {rechecked:?}"
    );

    // trust-the-cache consumer: sees the corrected entry, skips probing
    let trusting = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(base);
    let trusted = World::run_modeled(topo.clone(), truth_arc, |ctx| {
        let comm = ctx.comm_world();
        let req = trusting.init(ctx, &comm);
        (req.is_probing(), req.protocol())
    });
    for (probing, proto) in trusted {
        assert!(!probing, "corrected entry must warm-start");
        assert_eq!(proto, truth_choice);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bumping `MPISIM_TUNE_FIT_VERSION` after a model refit treats every
/// entry measured under an older generation as a miss: the next consult
/// re-probes and re-publishes at the new generation instead of trusting
/// a winner the old model crowned.
#[test]
fn fit_version_bump_forces_a_reprobe() {
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let truth = PostalModel::new(TRUTH_ALPHA, TRUTH_BETA);
    let mis = PostalModel::new(MIS_ALPHA, TRUTH_BETA);
    let (stale_choice, _) = choose_protocol(&pattern, &topo, &mis);
    let (truth_choice, _) = choose_protocol(&pattern, &topo, &truth);
    assert_ne!(stale_choice, truth_choice, "precondition: winners differ");
    let dir = tmpdir("fitver");

    const PROBES: usize = 4;
    let gen0 = TunePolicy::default()
        .with_probe_iters(PROBES)
        .with_factor(1.0e12)
        .with_profile_dir(&dir);

    // generation 0: publish the mis-charged winner
    let plant = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(gen0.clone());
    let mis_arc: Arc<dyn CostModel> = Arc::new(mis);
    World::run_modeled(topo.clone(), mis_arc, |ctx| {
        let comm = ctx.comm_world();
        let mut req = plant.init(ctx, &comm);
        for it in 0..PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
    });

    // generation 1: the gen-0 entry is a miss — full probe, re-publish
    let gen1 = gen0.clone().with_fit_version(1);
    let refit = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(gen1.clone());
    let truth_arc: Arc<dyn CostModel> = Arc::new(truth);
    let winners = World::run_modeled(topo.clone(), truth_arc.clone(), |ctx| {
        let comm = ctx.comm_world();
        let mut req = refit.init(ctx, &comm);
        assert!(
            req.is_probing(),
            "an entry from an older fit generation must not warm-start"
        );
        for it in 0..PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
        req.protocol()
    });
    assert!(winners.iter().all(|&w| w == truth_choice));

    // generation 1 again: the re-published entry now warm-starts
    let warm = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .cost_model(&mis)
        .tune_policy(gen1);
    let trusted = World::run_modeled(topo.clone(), truth_arc, |ctx| {
        let comm = ctx.comm_world();
        let req = warm.init(ctx, &comm);
        (req.is_probing(), req.protocol())
    });
    for (probing, proto) in trusted {
        assert!(!probing, "generation-1 entry must warm-start at gen 1");
        assert_eq!(proto, truth_choice);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The opt-in refit loop end to end: probe timings pooled by the tuner
/// fit a [`PostalModel`] (`fitted_auto_model`), and that model — passed
/// *explicitly* to `Backend::Auto` — both drives selection and delivers
/// correct values. Nothing is fitted implicitly: the default model stays
/// untouched unless the caller plugs the fitted one in.
#[test]
fn fitted_auto_model_plugs_into_backend_auto() {
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let truth = PostalModel::new(TRUTH_ALPHA, TRUTH_BETA);

    // guarantee a diverse observation pool: probe every candidate on the
    // truth-charging clock (each candidate is a distinct msgs/bytes mix)
    const PROBES: usize = 8;
    let coll = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .tune_policy(
            TunePolicy::default()
                .with_probe_iters(PROBES)
                .with_factor(1.0e12),
        );
    let truth_arc: Arc<dyn CostModel> = Arc::new(truth);
    World::run_modeled(topo.clone(), truth_arc, |ctx| {
        let comm = ctx.comm_world();
        let mut req = coll.init(ctx, &comm);
        for it in 0..PROBES + 1 {
            assert!(drive_iteration(&mut req, ctx, it));
        }
    });

    let fitted = mpi_advance::fitted_auto_model()
        .expect("enough probe observations recorded to fit a model");

    // the fitted model is an ordinary CostModel: Auto consults it for
    // selection, and the selected protocol still delivers byte-exactly
    let auto = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Auto)
        .cost_model(&fitted);
    let (expected, _) = choose_protocol(&pattern, &topo, &fitted);
    assert_eq!(
        auto.plan().0,
        expected,
        "Auto must consult the fitted model"
    );
    let ok = World::run(topo.n_ranks(), |ctx| {
        let comm = ctx.comm_world();
        let mut req = auto.init(ctx, &comm);
        let agreed = req.protocol() == expected;
        let mut values_ok = true;
        for it in 0..3 {
            values_ok &= drive_iteration(&mut req, ctx, it);
        }
        agreed && values_ok
    });
    assert!(ok.into_iter().all(|b| b));
}

/// The signatures that key the profile cache must stay stable: a cache
/// written by one run is only useful if the next run derives the same
/// key. `pattern_signature` stability is pinned in the core crate; here
/// we pin that the *pair* used by the tuned path distinguishes the
/// shapes it must and collapses the ones it should share.
#[test]
fn cache_key_signatures_distinguish_what_they_must() {
    let topo_a = Topology::block_nodes(16, 4);
    let topo_b = Topology::block_nodes(16, 8);
    let pat_a = CommPattern::all_to_all_regions(&topo_a);
    let pat_b = CommPattern::all_to_all_regions(&topo_b);

    assert_eq!(topology_signature(&topo_a), topology_signature(&topo_a));
    assert_ne!(topology_signature(&topo_a), topology_signature(&topo_b));
    assert_eq!(pat_a.pattern_signature(), pat_a.pattern_signature());
    assert_ne!(pat_a.pattern_signature(), pat_b.pattern_signature());
}
