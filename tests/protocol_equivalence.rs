//! Cross-protocol equivalence: for random communication patterns on block
//! topologies, every backend of the unified `NeighborAlltoallv` API — the
//! four paper protocols, the §5 partitioned combination, model-driven
//! auto-selection, and measured tuned selection (exercised mid-probe:
//! candidates hot-swap under the caller) — must deliver byte-identical
//! ghost values to a direct
//! exchange computed straight from the pattern. Each backend runs in a
//! one-shot spawned world, inside a shared warm [`WorldPool`], over
//! the cross-process shared-memory fabric ([`World::run_shm`] — the same
//! `ShmTransport` that backs ranks-as-OS-processes, exercised here with
//! rank threads), and over the socket fabric ([`World::run_sock`] — every
//! message framed, sequenced, and pushed through a real socket), so the
//! zero-copy pooled path and both wire paths are pinned byte-for-byte to
//! the same reference.
//!
//! A second property pins the [`NeighborBatch`] session API to the same
//! reference: a batch of N random (pattern, backend) entries — planned,
//! tagged, and staged together; spawned, pooled, and over the shm fabric
//! — must deliver byte-identical outputs to N independent
//! `NeighborAlltoallv` inits,
//! **whichever lifecycle drives it**: the completion-driven
//! `start_all`/`wait_any` retire loop (entries complete in delivery
//! order) and `start_all`/`wait_all` are both pinned against the
//! independent `start_wait` reference.
//!
//! A final deterministic test pins `wait_any`'s ordering contract itself:
//! entries retire in **delivery** order, not init order, under a skewed
//! modeled topology whose send order is forced by out-of-band handshakes.
//!
//! Both properties additionally re-run sampled configurations under
//! seeded [`FaultPlan`] schedules (delivery delays, tag-legal reorders,
//! spurious wakeups) on both fabrics: injected faults perturb timing and
//! interleaving but must never change a single output byte.

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, NeighborBatch, Protocol};
use mpisim::{FaultPlan, World, WorldPool};
use proptest::prelude::*;

/// A seeded timing-perturbation schedule (delays + tag-legal reorders +
/// spurious wakeups — no kills): the fault layer must be semantically
/// invisible, so every faulted run below is held to the same byte-exact
/// reference as the fault-free ones. The deadline is a safety net that
/// turns a chaos-induced hang into a loud failure.
fn perturb_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .delays(200, 120)
        .reorder(150)
        .spurious(100)
        .deadline_ms(30_000)
}

/// Random pattern over `n` ranks: each rank sends a few indices drawn from
/// its own index space (rank r owns [r·K, (r+1)·K), so origins are unique
/// by construction) to a few random peers.
fn arb_pattern(n: usize) -> impl Strategy<Value = CommPattern> {
    const K: usize = 16;
    prop::collection::vec(
        prop::collection::vec((0usize..n, prop::collection::vec(0usize..K, 1..5)), 0..4),
        n..=n,
    )
    .prop_map(move |raw| {
        let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        for (src, list) in raw.into_iter().enumerate() {
            let mut per_dst: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (dst, idx) in list {
                if dst == src {
                    continue;
                }
                per_dst
                    .entry(dst)
                    .or_default()
                    .extend(idx.iter().map(|&i| src * K + i));
            }
            for (dst, mut idx) in per_dst {
                idx.sort_unstable();
                idx.dedup();
                sends[src].push((dst, idx));
            }
        }
        CommPattern::new(n, sends)
    })
}

/// The value rank-owned index `i` carries in iteration `it`.
fn value(i: usize, it: u64) -> f64 {
    (i as f64) * 16.0 + (it as f64) * 0.25
}

/// Direct exchange: the ghost values each rank must end up with, computed
/// from the pattern alone (no communication).
fn expected_outputs(pattern: &CommPattern, it: u64) -> Vec<Vec<f64>> {
    (0..pattern.n_ranks)
        .map(|r| {
            pattern
                .dst_indices(r)
                .iter()
                .map(|&i| value(i, it))
                .collect()
        })
        .collect()
}

/// One rank's SPMD body: two iterations, raw output bits per iteration.
fn backend_body(
    coll: &NeighborAlltoallv,
    ctx: &mut mpisim::RankCtx,
    comm: &mpisim::Comm,
) -> Vec<Vec<u64>> {
    let mut req = coll.init(ctx, comm);
    let mut iters = Vec::new();
    for it in 0..2u64 {
        let input: Vec<f64> = req.input_index().iter().map(|&i| value(i, it)).collect();
        let mut output = vec![f64::NAN; req.output_index().len()];
        req.start_wait(ctx, &input, &mut output);
        iters.push(output.iter().map(|v| v.to_bits()).collect());
    }
    iters
}

/// Run `backend` in a fresh spawned world for two iterations and collect
/// every rank's raw output bytes.
fn run_backend(pattern: &CommPattern, topo: &Topology, backend: Backend) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    World::run(pattern.n_ranks, |ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

/// Run `backend` as one epoch of a shared warm pool — the pooled,
/// zero-copy steady-state path.
fn run_backend_pooled(
    pool: &WorldPool,
    pattern: &CommPattern,
    topo: &Topology,
    backend: Backend,
) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    pool.run(|ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

/// Run `backend` in a fresh world over the shared-memory fabric: the
/// byte-payload `ShmTransport` wire path (mailbox rings, chunking,
/// pre-matched ring channels) under the thread deployment shape.
fn run_backend_shm(pattern: &CommPattern, topo: &Topology, backend: Backend) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    World::run_shm(pattern.n_ranks, |ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

/// Run `backend` in a fresh world over the socket fabric's loopback mesh:
/// every plain envelope and persistent payload framed, sequenced, and
/// acknowledged through a real socket.
fn run_backend_sock(
    pattern: &CommPattern,
    topo: &Topology,
    backend: Backend,
) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    World::run_sock(pattern.n_ranks, |ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

/// Every backend, for the batch property's per-entry draws. `Tuned`
/// rides with the default probe budget (12 ≫ the 2 iterations driven
/// here), so these cases pin the **mid-probe** behavior: candidates
/// hot-swap under the caller's feet and every byte must still match.
const ALL_BACKENDS: [Backend; 8] = [
    Backend::Protocol(Protocol::StandardHypre),
    Backend::Protocol(Protocol::StandardNeighbor),
    Backend::Protocol(Protocol::PartialNeighbor),
    Backend::Protocol(Protocol::FullNeighbor),
    Backend::Partitioned(Protocol::PartialNeighbor),
    Backend::Partitioned(Protocol::FullNeighbor),
    Backend::Auto,
    Backend::Tuned,
];

/// Which session lifecycle drives a batch's iterations.
#[derive(Clone, Copy, Debug)]
enum Lifecycle {
    /// `start_all` then one `wait_all` (internally a wait-any loop).
    WaitAll,
    /// `start_all` then an explicit `wait_any` retire loop — the
    /// completion-driven shape, entries retiring in delivery order.
    WaitAny,
}

/// One rank's SPMD body over a whole batch: two iterations per entry,
/// entries started together (the live-together shape sessions exist for)
/// and retired through the given lifecycle, raw output bits per entry per
/// iteration.
fn batch_body(
    batch: &NeighborBatch,
    lifecycle: Lifecycle,
    ctx: &mut mpisim::RankCtx,
    comm: &mpisim::Comm,
) -> Vec<Vec<Vec<u64>>> {
    let mut session = batch.init_all(ctx, comm);
    let mut per_entry: Vec<Vec<Vec<u64>>> = vec![Vec::new(); session.len()];
    for it in 0..2u64 {
        let inputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|r| r.input_index().iter().map(|&i| value(i, it)).collect())
            .collect();
        let mut outputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|r| vec![f64::NAN; r.output_index().len()])
            .collect();
        session.start_all(ctx, &inputs);
        match lifecycle {
            Lifecycle::WaitAll => session.wait_all(ctx, &mut outputs),
            Lifecycle::WaitAny => {
                let mut retired = vec![false; session.len()];
                while session.in_flight() > 0 {
                    let e = session.wait_any(ctx, &mut outputs);
                    assert!(!std::mem::replace(&mut retired[e], true), "entry {e} twice");
                }
            }
        }
        for (e, output) in outputs.iter().enumerate() {
            per_entry[e].push(output.iter().map(|v| v.to_bits()).collect());
        }
    }
    per_entry
}

proptest! {
    // Each case spins up one thread-world per backend; keep the count
    // modest so tier-1 stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four protocols, the partitioned backend, and Auto agree with
    /// the direct exchange bit for bit, for random patterns and region
    /// sizes.
    #[test]
    fn all_backends_match_direct_exchange(
        pattern in arb_pattern(8),
        ppn in 1usize..5,
    ) {
        let topo = Topology::block_nodes(8, ppn);
        let mut backends: Vec<Backend> =
            Protocol::ALL.into_iter().map(Backend::Protocol).collect();
        backends.push(Backend::Partitioned(Protocol::PartialNeighbor));
        backends.push(Backend::Partitioned(Protocol::FullNeighbor));
        backends.push(Backend::Auto);
        backends.push(Backend::Tuned);

        let expected: Vec<Vec<Vec<u64>>> = (0..2u64)
            .map(|it| {
                expected_outputs(&pattern, it)
                    .into_iter()
                    .map(|vals| vals.into_iter().map(f64::to_bits).collect())
                    .collect()
            })
            .collect();

        // one warm pool shared by every backend of this case: epochs must
        // not leak state into each other, and the pooled zero-copy path
        // must match the spawned path bit for bit
        let pool = World::pool(8);
        for backend in backends {
            let got = run_backend(&pattern, &topo, backend);
            let pooled = run_backend_pooled(&pool, &pattern, &topo, backend);
            let shm = run_backend_shm(&pattern, &topo, backend);
            let sock = run_backend_sock(&pattern, &topo, backend);
            for (rank, iters) in got.iter().enumerate() {
                for (it, bits) in iters.iter().enumerate() {
                    prop_assert_eq!(
                        bits,
                        &expected[it][rank],
                        "{:?} diverged at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &pooled[rank][it],
                        bits,
                        "{:?} pooled world diverged from spawned world at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &shm[rank][it],
                        bits,
                        "{:?} shm world diverged from thread world at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &sock[rank][it],
                        bits,
                        "{:?} sock world diverged from thread world at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                }
            }
        }

        // the same exchange under seeded delay/reorder fault schedules —
        // one representative backend per execution engine — must stay
        // byte-identical on both fabrics
        for (seed, backend) in [
            (40u64, Backend::Protocol(Protocol::StandardHypre)),
            (41, Backend::Partitioned(Protocol::FullNeighbor)),
            (42, Backend::Auto),
            (43, Backend::Tuned),
        ] {
            let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
            let faulted = World::with_faults(8, perturb_plan(seed), |ctx| {
                let comm = ctx.comm_world();
                backend_body(&coll, ctx, &comm)
            });
            let faulted_shm = World::with_faults_shm(8, perturb_plan(seed ^ 0xa5), |ctx| {
                let comm = ctx.comm_world();
                backend_body(&coll, ctx, &comm)
            });
            let faulted_sock = World::with_faults_sock(8, perturb_plan(seed ^ 0x5a), |ctx| {
                let comm = ctx.comm_world();
                backend_body(&coll, ctx, &comm)
            });
            for rank in 0..8 {
                for it in 0..2 {
                    prop_assert_eq!(
                        &faulted[rank][it],
                        &expected[it][rank],
                        "{:?} under fault seed {} diverged at rank {} iteration {}",
                        backend,
                        seed,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &faulted_shm[rank][it],
                        &expected[it][rank],
                        "{:?} under shm fault seed {} diverged at rank {} iteration {}",
                        backend,
                        seed ^ 0xa5,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &faulted_sock[rank][it],
                        &expected[it][rank],
                        "{:?} under sock fault seed {} diverged at rank {} iteration {}",
                        backend,
                        seed ^ 0x5a,
                        rank,
                        it
                    );
                }
            }
        }
    }

    /// A `NeighborBatch` of random (pattern, backend) entries delivers
    /// byte-identical outputs to the same entries initialized as N
    /// independent `NeighborAlltoallv` collectives — in a fresh spawned
    /// world and as an epoch of a shared warm pool alike, and through
    /// **both** session lifecycles: the completion-driven
    /// `start_all`/`wait_any` retire loop and `start_all`/`wait_all`.
    #[test]
    fn batch_matches_independent_inits(
        patterns in prop::collection::vec(arb_pattern(8), 1..4),
        backend_picks in prop::collection::vec(0usize..ALL_BACKENDS.len(), 3),
        ppn in 1usize..5,
    ) {
        let topo = Topology::block_nodes(8, ppn);
        let entries: Vec<(&CommPattern, Backend)> = patterns
            .iter()
            .zip(&backend_picks)
            .map(|(p, &b)| (p, ALL_BACKENDS[b]))
            .collect();

        // reference: each entry as its own independent collective, driven
        // by N blocking start_waits
        let independent: Vec<Vec<Vec<Vec<u64>>>> = entries
            .iter()
            .map(|&(pattern, backend)| run_backend(pattern, &topo, backend))
            .collect();

        let mut batch = NeighborBatch::new(&topo);
        for &(pattern, backend) in &entries {
            batch = batch.entry(pattern, backend);
        }
        let pool = World::pool(8);
        for lifecycle in [Lifecycle::WaitAny, Lifecycle::WaitAll] {
            let batched = World::run(8, |ctx| {
                let comm = ctx.comm_world();
                batch_body(&batch, lifecycle, ctx, &comm)
            });
            let pooled = pool.run(|ctx| {
                let comm = ctx.comm_world();
                batch_body(&batch, lifecycle, ctx, &comm)
            });
            let shm = World::run_shm(8, |ctx| {
                let comm = ctx.comm_world();
                batch_body(&batch, lifecycle, ctx, &comm)
            });
            let sock = World::run_sock(8, |ctx| {
                let comm = ctx.comm_world();
                batch_body(&batch, lifecycle, ctx, &comm)
            });

            for (rank, per_entry) in batched.iter().enumerate() {
                prop_assert_eq!(per_entry.len(), entries.len());
                for (e, iters) in per_entry.iter().enumerate() {
                    for (it, bits) in iters.iter().enumerate() {
                        prop_assert_eq!(
                            bits,
                            &independent[e][rank][it],
                            "{:?} batch entry {} ({:?}) diverged from its independent \
                             init at rank {} iteration {}",
                            lifecycle,
                            e,
                            entries[e].1,
                            rank,
                            it
                        );
                        prop_assert_eq!(
                            &pooled[rank][e][it],
                            bits,
                            "{:?} pooled batch diverged from spawned batch at entry {} \
                             rank {} iteration {}",
                            lifecycle,
                            e,
                            rank,
                            it
                        );
                        prop_assert_eq!(
                            &shm[rank][e][it],
                            bits,
                            "{:?} shm batch diverged from thread batch at entry {} \
                             rank {} iteration {}",
                            lifecycle,
                            e,
                            rank,
                            it
                        );
                        prop_assert_eq!(
                            &sock[rank][e][it],
                            bits,
                            "{:?} sock batch diverged from thread batch at entry {} \
                             rank {} iteration {}",
                            lifecycle,
                            e,
                            rank,
                            it
                        );
                    }
                }
            }
        }

        // the completion-driven session under a seeded delay/reorder
        // fault schedule: wait_any retires entries in (perturbed)
        // delivery order, yet every output must stay byte-identical
        let faulted = World::with_faults(8, perturb_plan(77), |ctx| {
            let comm = ctx.comm_world();
            batch_body(&batch, Lifecycle::WaitAny, ctx, &comm)
        });
        let faulted_shm = World::with_faults_shm(8, perturb_plan(78), |ctx| {
            let comm = ctx.comm_world();
            batch_body(&batch, Lifecycle::WaitAny, ctx, &comm)
        });
        let faulted_sock = World::with_faults_sock(8, perturb_plan(79), |ctx| {
            let comm = ctx.comm_world();
            batch_body(&batch, Lifecycle::WaitAny, ctx, &comm)
        });
        for rank in 0..8 {
            for e in 0..entries.len() {
                for it in 0..2 {
                    prop_assert_eq!(
                        &faulted[rank][e][it],
                        &independent[e][rank][it],
                        "faulted batch diverged at entry {} rank {} iteration {}",
                        e,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &faulted_shm[rank][e][it],
                        &independent[e][rank][it],
                        "faulted shm batch diverged at entry {} rank {} iteration {}",
                        e,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &faulted_sock[rank][e][it],
                        &independent[e][rank][it],
                        "faulted sock batch diverged at entry {} rank {} iteration {}",
                        e,
                        rank,
                        it
                    );
                }
            }
        }
    }
}

/// Deterministic smoke for the mixed-backend session: one batch holding a
/// plain-protocol entry, a partitioned entry, and an Auto entry over
/// different patterns, all live and interleaved on one communicator.
#[test]
fn mixed_backend_batch_matches_direct_exchange() {
    let topo = Topology::block_nodes(8, 4);
    let fine = CommPattern::example_2_1();
    let mid = CommPattern::new(
        8,
        vec![
            vec![(1, vec![0]), (5, vec![0, 1])],
            vec![(4, vec![10]), (6, vec![11])],
            vec![(7, vec![20, 21])],
            vec![],
            vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
            vec![(6, vec![50])],
            vec![(3, vec![60]), (0, vec![61])],
            vec![],
        ],
    );
    let coarse = CommPattern::example_2_1();
    let batch = NeighborBatch::new(&topo)
        .entry(&fine, Backend::Protocol(Protocol::FullNeighbor))
        .entry(&mid, Backend::Partitioned(Protocol::PartialNeighbor))
        .entry(&coarse, Backend::Auto);
    let patterns = [&fine, &mid, &coarse];

    let got = World::run(8, |ctx| {
        let comm = ctx.comm_world();
        batch_body(&batch, Lifecycle::WaitAny, ctx, &comm)
    });
    for (rank, per_entry) in got.iter().enumerate() {
        for (e, iters) in per_entry.iter().enumerate() {
            for (it, bits) in iters.iter().enumerate() {
                let expected: Vec<u64> = expected_outputs(patterns[e], it as u64)[rank]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(bits, &expected, "entry {e} rank {rank} iteration {it}");
            }
        }
    }
}

/// `wait_any` must retire entries in **delivery** order, not init order.
///
/// Deterministic by construction: on a skewed modeled topology (two nodes
/// joined by a slow postal link), rank 1 starts the *last* entry first and
/// gates the first entry's start on an out-of-band ack that rank 0 sends
/// only after `wait_any` has retired the last entry — so at rank 0's first
/// `wait_any`, entry 1's traffic is the only traffic in the world, and at
/// its second, entry 0's is. An init-order (or channel-registration-order)
/// wait would block on entry 0 and deadlock; completing in delivery order
/// is what makes the skew harmless.
#[test]
fn wait_any_retires_entries_in_delivery_order() {
    use std::sync::Arc;

    // entry 0: rank 1 owns index 10, sends it to rank 0
    // entry 1: rank 1 owns index 20, sends it to rank 0
    let a = CommPattern::new(2, vec![vec![], vec![(0, vec![10])]]);
    let b = CommPattern::new(2, vec![vec![], vec![(0, vec![20])]]);
    let topo = Topology::block_nodes(2, 1); // one rank per node: inter-node link
    let batch = NeighborBatch::new(&topo)
        .entry(&a, Backend::Protocol(Protocol::StandardNeighbor))
        .entry(&b, Backend::Protocol(Protocol::StandardNeighbor))
        // pin the collective tag namespace away from the plain-send ack tag
        .tag_base(1 << 12);
    const ACK: u64 = 7;

    let model = Arc::new(perfmodel::PostalModel::new(5e-6, 2e-9));
    let orders = mpisim::World::run_modeled(topo.clone(), model, |ctx| {
        let comm = ctx.comm_world();
        let mut session = batch.init_all(ctx, &comm);
        let mut outputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|r| vec![f64::NAN; r.output_index().len()])
            .collect();
        if ctx.rank() == 0 {
            // receiver: both entries posted up front, in init order
            session.start(ctx, 0, &[]);
            session.start(ctx, 1, &[]);
            let first = session.wait_any(ctx, &mut outputs);
            ctx.send(&comm, 1, ACK, &[1u8]); // release entry 0's traffic
            let second = session.wait_any(ctx, &mut outputs);
            assert_eq!(outputs[0], vec![10.0]);
            assert_eq!(outputs[1], vec![20.0]);
            vec![first, second]
        } else {
            // sender: entry 1 (init-order LAST) goes first; entry 0 only
            // after rank 0 has demonstrably retired entry 1
            session.start(ctx, 1, &[20.0]);
            let _: Vec<u8> = ctx.recv(&comm, 0, ACK);
            session.start(ctx, 0, &[10.0]);
            let first = session.wait_any(ctx, &mut outputs);
            let second = session.wait_any(ctx, &mut outputs);
            vec![first, second]
        }
    });
    assert_eq!(
        orders[0],
        vec![1, 0],
        "wait_any must follow delivery order, not init order"
    );
}
