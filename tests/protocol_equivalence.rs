//! Cross-protocol equivalence: for random communication patterns on block
//! topologies, every backend of the unified `NeighborAlltoallv` API — the
//! four paper protocols, the §5 partitioned combination, and model-driven
//! auto-selection — must deliver byte-identical ghost values to a direct
//! exchange computed straight from the pattern. Each backend runs both in
//! a one-shot spawned world and inside a shared warm [`WorldPool`], so the
//! zero-copy pooled path is pinned byte-for-byte to the same reference.

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::{World, WorldPool};
use proptest::prelude::*;

/// Random pattern over `n` ranks: each rank sends a few indices drawn from
/// its own index space (rank r owns [r·K, (r+1)·K), so origins are unique
/// by construction) to a few random peers.
fn arb_pattern(n: usize) -> impl Strategy<Value = CommPattern> {
    const K: usize = 16;
    prop::collection::vec(
        prop::collection::vec((0usize..n, prop::collection::vec(0usize..K, 1..5)), 0..4),
        n..=n,
    )
    .prop_map(move |raw| {
        let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        for (src, list) in raw.into_iter().enumerate() {
            let mut per_dst: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (dst, idx) in list {
                if dst == src {
                    continue;
                }
                per_dst
                    .entry(dst)
                    .or_default()
                    .extend(idx.iter().map(|&i| src * K + i));
            }
            for (dst, mut idx) in per_dst {
                idx.sort_unstable();
                idx.dedup();
                sends[src].push((dst, idx));
            }
        }
        CommPattern::new(n, sends)
    })
}

/// The value rank-owned index `i` carries in iteration `it`.
fn value(i: usize, it: u64) -> f64 {
    (i as f64) * 16.0 + (it as f64) * 0.25
}

/// Direct exchange: the ghost values each rank must end up with, computed
/// from the pattern alone (no communication).
fn expected_outputs(pattern: &CommPattern, it: u64) -> Vec<Vec<f64>> {
    (0..pattern.n_ranks)
        .map(|r| {
            pattern
                .dst_indices(r)
                .iter()
                .map(|&i| value(i, it))
                .collect()
        })
        .collect()
}

/// One rank's SPMD body: two iterations, raw output bits per iteration.
fn backend_body(
    coll: &NeighborAlltoallv,
    ctx: &mut mpisim::RankCtx,
    comm: &mpisim::Comm,
) -> Vec<Vec<u64>> {
    let mut req = coll.init(ctx, comm);
    let mut iters = Vec::new();
    for it in 0..2u64 {
        let input: Vec<f64> = req.input_index().iter().map(|&i| value(i, it)).collect();
        let mut output = vec![f64::NAN; req.output_index().len()];
        req.start_wait(ctx, &input, &mut output);
        iters.push(output.iter().map(|v| v.to_bits()).collect());
    }
    iters
}

/// Run `backend` in a fresh spawned world for two iterations and collect
/// every rank's raw output bytes.
fn run_backend(pattern: &CommPattern, topo: &Topology, backend: Backend) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    World::run(pattern.n_ranks, |ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

/// Run `backend` as one epoch of a shared warm pool — the pooled,
/// zero-copy steady-state path.
fn run_backend_pooled(
    pool: &WorldPool,
    pattern: &CommPattern,
    topo: &Topology,
    backend: Backend,
) -> Vec<Vec<Vec<u64>>> {
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    pool.run(|ctx| {
        let comm = ctx.comm_world();
        backend_body(&coll, ctx, &comm)
    })
}

proptest! {
    // Each case spins up one thread-world per backend; keep the count
    // modest so tier-1 stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four protocols, the partitioned backend, and Auto agree with
    /// the direct exchange bit for bit, for random patterns and region
    /// sizes.
    #[test]
    fn all_backends_match_direct_exchange(
        pattern in arb_pattern(8),
        ppn in 1usize..5,
    ) {
        let topo = Topology::block_nodes(8, ppn);
        let mut backends: Vec<Backend> =
            Protocol::ALL.into_iter().map(Backend::Protocol).collect();
        backends.push(Backend::Partitioned(Protocol::PartialNeighbor));
        backends.push(Backend::Partitioned(Protocol::FullNeighbor));
        backends.push(Backend::Auto);

        let expected: Vec<Vec<Vec<u64>>> = (0..2u64)
            .map(|it| {
                expected_outputs(&pattern, it)
                    .into_iter()
                    .map(|vals| vals.into_iter().map(f64::to_bits).collect())
                    .collect()
            })
            .collect();

        // one warm pool shared by every backend of this case: epochs must
        // not leak state into each other, and the pooled zero-copy path
        // must match the spawned path bit for bit
        let pool = World::pool(8);
        for backend in backends {
            let got = run_backend(&pattern, &topo, backend);
            let pooled = run_backend_pooled(&pool, &pattern, &topo, backend);
            for (rank, iters) in got.iter().enumerate() {
                for (it, bits) in iters.iter().enumerate() {
                    prop_assert_eq!(
                        bits,
                        &expected[it][rank],
                        "{:?} diverged at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                    prop_assert_eq!(
                        &pooled[rank][it],
                        bits,
                        "{:?} pooled world diverged from spawned world at rank {} iteration {}",
                        backend,
                        rank,
                        it
                    );
                }
            }
        }
    }
}
