//! Chaos tests: deterministic fault injection over every fabric (thread,
//! shm, sock).
//!
//! The fault layer's contract is that every perturbation it injects is
//! *semantically invisible* — delays, tag-legal reorders, and spurious
//! wakeups may shake the schedule, but a faulted world must deliver
//! byte-identical results to a fault-free one. Kills and deadlocks, by
//! contrast, must end loudly and quickly: a killed rank aborts its world
//! within the wait deadline, the abort names the dead rank in a
//! [`mpisim::StallReport`], and a pooled world degrades gracefully into a
//! structured [`EpochError`] and stays usable for the next epoch.

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::collectives::op_sum_u64;
use mpisim::{FaultPlan, RankCtx, World};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The value rank-owned index `i` carries in iteration `it`.
fn value(i: usize, it: u64) -> f64 {
    (i as f64) * 16.0 + (it as f64) * 0.25
}

/// Render a caught panic payload for substring assertions.
fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".into()
    }
}

/// One rank's SPMD body: a mixed workload touching every op class the
/// fault layer counts — a persistent neighbor collective (channel
/// push/pop + wait_any), a partitioned one, plain ring sends/recvs
/// (deposit + match_recv), and a collective — returning raw result bits.
fn chaos_body(full: &NeighborAlltoallv, part: &NeighborAlltoallv, ctx: &mut RankCtx) -> Vec<u64> {
    let comm = ctx.comm_world();
    let mut bits = Vec::new();
    let mut req_full = full.init(ctx, &comm);
    let mut req_part = part.init(ctx, &comm);
    for it in 0..2u64 {
        for req in [&mut req_full, &mut req_part] {
            let input: Vec<f64> = req.input_index().iter().map(|&i| value(i, it)).collect();
            let mut output = vec![f64::NAN; req.output_index().len()];
            req.start_wait(ctx, &input, &mut output);
            bits.extend(output.iter().map(|v| v.to_bits()));
        }
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(&comm, right, 40 + it, &[ctx.rank() as u64 * 7 + it]);
        let got: Vec<u64> = ctx.recv(&comm, left, 40 + it);
        bits.extend(got);
        bits.extend(ctx.allreduce(&comm, &[ctx.rank() as u64 + it], op_sum_u64));
    }
    bits
}

/// Run the mixed workload in a world built by `launch`.
fn run_chaos_world(
    launch: impl FnOnce(&(dyn Fn(&mut RankCtx) -> Vec<u64> + Sync)) -> Vec<Vec<u64>>,
) -> Vec<Vec<u64>> {
    let pattern = CommPattern::example_2_1();
    let topo = Topology::block_nodes(pattern.n_ranks, 4);
    let full =
        NeighborAlltoallv::new(&pattern, &topo).backend(Backend::Protocol(Protocol::FullNeighbor));
    let part = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Partitioned(Protocol::PartialNeighbor))
        .tag_base(1 << 13); // two live collectives: disjoint tag namespaces
    launch(&move |ctx| chaos_body(&full, &part, ctx))
}

/// A timing-perturbation plan (no kills): delays on a quarter of counted
/// ops, held/reordered deposits, spurious wakeups. The deadline is a
/// safety net so a chaos-induced hang fails the test instead of wedging
/// the suite.
fn perturb_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .delays(250, 150)
        .reorder(200)
        .spurious(150)
        .deadline_ms(30_000)
}

/// A fault-free plan (deadline only) must not change results — and must
/// not even wrap the transport (pinned by a unit test; end-to-end here).
#[test]
fn fault_free_plan_is_byte_identical() {
    let reference = run_chaos_world(|f| World::run(8, f));
    let idle =
        run_chaos_world(|f| World::with_faults(8, FaultPlan::seeded(11).deadline_ms(30_000), f));
    assert_eq!(reference, idle, "a no-fault plan changed results");
    // delay-only: every counted op sleeps, nothing else is perturbed
    let delayed = run_chaos_world(|f| {
        World::with_faults(
            8,
            FaultPlan::seeded(12).delays(1000, 60).deadline_ms(30_000),
            f,
        )
    });
    assert_eq!(reference, delayed, "a delay-only plan changed results");
}

/// ≥20 seeded schedules (10 thread + 10 shm), each mixing delays,
/// reorders, and spurious wakeups, all byte-identical to the fault-free
/// run on the same fabric.
#[test]
fn seeded_schedules_are_byte_identical_thread() {
    let reference = run_chaos_world(|f| World::run(8, f));
    for seed in 0..10u64 {
        let faulted = run_chaos_world(|f| World::with_faults(8, perturb_plan(seed), f));
        assert_eq!(faulted, reference, "thread schedule seed {seed} diverged");
    }
}

#[test]
fn seeded_schedules_are_byte_identical_shm() {
    let reference = run_chaos_world(|f| World::run_shm(8, f));
    for seed in 100..110u64 {
        let faulted = run_chaos_world(|f| World::with_faults_shm(8, perturb_plan(seed), f));
        assert_eq!(faulted, reference, "shm schedule seed {seed} diverged");
    }
}

#[test]
fn seeded_schedules_are_byte_identical_sock() {
    let reference = run_chaos_world(|f| World::run_sock(8, f));
    for seed in 200..206u64 {
        let faulted = run_chaos_world(|f| World::with_faults_sock(8, perturb_plan(seed), f));
        assert_eq!(faulted, reference, "sock schedule seed {seed} diverged");
    }
}

/// Transient disconnects on the socket fabric: `drops` severs the link
/// mid-epoch *before* chosen deposits, so the frame rides the reconnected
/// link's replay. Reconnect-with-resume must make every drop semantically
/// invisible — byte-identical results, exactly-once delivery — across
/// several seeds and drop rates.
#[test]
fn sock_link_drops_resume_byte_identically() {
    let reference = run_chaos_world(|f| World::run_sock(8, f));
    for (seed, permille) in [(300u64, 40u16), (301, 120), (302, 250)] {
        let plan = FaultPlan::seeded(seed).drops(permille).deadline_ms(30_000);
        let faulted = run_chaos_world(|f| World::with_faults_sock(8, plan.clone(), f));
        assert_eq!(
            faulted, reference,
            "sock drop schedule seed {seed} ({permille}permille) diverged"
        );
    }
    // drops composed with the full perturbation mix: still invisible
    for seed in 310..313u64 {
        let plan = perturb_plan(seed).drops(80);
        let faulted = run_chaos_world(|f| World::with_faults_sock(8, plan, f));
        assert_eq!(
            faulted, reference,
            "sock drop+perturb schedule seed {seed} diverged"
        );
    }
}

/// Ring traffic that keeps every rank's op counter advancing long enough
/// for any kill index used below to land mid-workload.
fn ring_body(ctx: &mut RankCtx) -> u64 {
    let comm = ctx.comm_world();
    let mut acc = 0u64;
    for it in 0..16u64 {
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(&comm, right, it, &[ctx.rank() as u64 + it]);
        let got: Vec<u64> = ctx.recv(&comm, left, it);
        acc += got[0];
    }
    acc
}

/// Kill matrix, one-shot worlds: both fabrics × several op indices. The
/// world must abort well inside the deadline, and the propagated panic
/// must either be the victim's own kill message or a peer abort whose
/// stall report names the dead rank.
#[test]
fn kill_schedules_abort_one_shot_worlds() {
    for fabric in ["thread", "shm", "sock"] {
        for (victim, nth) in [(1usize, 5u64), (2, 17)] {
            let plan = FaultPlan::seeded(9).kill(victim, nth).deadline_ms(10_000);
            let start = Instant::now();
            let err = catch_unwind(AssertUnwindSafe(|| match fabric {
                "shm" => World::with_faults_shm(4, plan.clone(), ring_body),
                "sock" => World::with_faults_sock(4, plan.clone(), ring_body),
                _ => World::with_faults(4, plan.clone(), ring_body),
            }))
            .expect_err("a killed rank must fail the world");
            let elapsed = start.elapsed();
            assert!(
                elapsed < Duration::from_secs(15),
                "kill ({fabric}, rank {victim} @ op {nth}) took {elapsed:?} to abort"
            );
            let msg = panic_text(err);
            assert!(
                msg.contains("killed by fault plan")
                    || msg.contains(&format!("dead rank: {victim}")),
                "kill ({fabric}, rank {victim} @ op {nth}): abort names neither the \
                 kill nor the dead rank:\n{msg}"
            );
        }
    }
}

/// Kill matrix, pooled worlds: a kill schedule surfaces as a structured
/// [`mpisim::EpochError`] naming the victim, and the pool stays usable
/// for the next (fault-free, counters past the kill index) epoch.
#[test]
fn kill_schedules_degrade_gracefully_in_pools() {
    for fabric in ["thread", "shm", "sock"] {
        for (victim, nth) in [(1usize, 5u64), (3, 17)] {
            let plan = FaultPlan::seeded(21).kill(victim, nth).deadline_ms(10_000);
            let pool = match fabric {
                "shm" => World::pool_with_faults_shm(4, plan),
                "sock" => World::pool_with_faults_sock(4, plan),
                _ => World::pool_with_faults(4, plan),
            };
            let start = Instant::now();
            let err = pool
                .try_run(ring_body)
                .expect_err("a killed rank must fail the epoch");
            let elapsed = start.elapsed();
            assert!(
                elapsed < Duration::from_secs(15),
                "pooled kill ({fabric}, rank {victim} @ op {nth}) took {elapsed:?}"
            );
            assert!(
                err.failures
                    .iter()
                    .any(|(r, m)| *r == victim && m.contains("killed by fault plan")),
                "pooled kill ({fabric}, rank {victim} @ op {nth}): EpochError does \
                 not attribute the kill: {err}"
            );
            assert!(err.to_string().contains("epoch failed on rank"));
            // graceful degradation: the pool survives the killed epoch
            // (the victim's op counter is already past the kill index)
            let out = pool.run(|ctx| ctx.rank() * 10);
            assert_eq!(
                out,
                vec![0, 10, 20, 30],
                "pool unusable after kill ({fabric})"
            );
        }
    }
}

/// An application panic (not a fault-plan kill) also comes back as a
/// structured `EpochError` attributing the right rank.
#[test]
fn application_panic_becomes_epoch_error() {
    let pool = World::pool(3);
    let err = pool
        .try_run(|ctx| {
            if ctx.rank() == 2 {
                panic!("deliberate chaos-test failure");
            }
            ctx.rank()
        })
        .expect_err("rank 2 panicked");
    assert_eq!(err.rank, 2);
    assert!(err.message.contains("deliberate chaos-test failure"));
    assert_eq!(pool.run(|ctx| ctx.rank()), vec![0, 1, 2]);
}

/// A mutual-recv deadlock hits the plan's deadline and aborts with a
/// stall-forensics dump instead of hanging — on both fabrics.
#[test]
fn deadline_expiry_dumps_a_stall_report() {
    let deadlock = |ctx: &mut RankCtx| {
        let comm = ctx.comm_world();
        let peer = 1 - ctx.rank();
        let _: Vec<u64> = ctx.recv(&comm, peer, 9); // nobody ever sends
    };
    for fabric in ["thread", "shm", "sock"] {
        let plan = FaultPlan::seeded(3).deadline_ms(400);
        let start = Instant::now();
        let err = catch_unwind(AssertUnwindSafe(|| match fabric {
            "shm" => World::with_faults_shm(2, plan.clone(), deadlock),
            "sock" => World::with_faults_sock(2, plan.clone(), deadlock),
            _ => World::with_faults(2, plan.clone(), deadlock),
        }))
        .expect_err("the deadlocked world must abort");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "deadline abort ({fabric}) took {elapsed:?}"
        );
        let msg = panic_text(err);
        // the joined payload is either a rank's own deadline abort, or —
        // when one rank's deadline fires first — its peer's death abort
        // (also carrying the stall report, which then names the victim)
        assert!(
            msg.contains("wait deadline of 400 ms") || msg.contains("peer rank panicked"),
            "deadline abort ({fabric}) names neither the deadline nor a dead peer:\n{msg}"
        );
        assert!(
            msg.contains("StallReport"),
            "deadline abort ({fabric}) carries no stall report:\n{msg}"
        );
        assert!(
            msg.contains("blocked"),
            "stall report ({fabric}) shows no parked wait:\n{msg}"
        );
        assert!(
            msg.contains(&format!("transport fabric: {fabric}")),
            "stall report ({fabric}) does not name its transport fabric:\n{msg}"
        );
        if fabric == "sock" {
            // the sock report's transport section carries per-link state
            assert!(
                msg.contains("link to proc"),
                "sock stall report carries no link forensics:\n{msg}"
            );
        }
    }
}
