//! Integration of the virtual-clock execution path: running protocols on
//! `World::run_modeled` yields per-rank clocks whose ordering matches the
//! analytic evaluation.

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::World;
use perfmodel::{LocalityModel, PostalModel};
use std::sync::Arc;

/// Execute `protocol` on the modeled world and return the max rank clock
/// after `iters` iterations (init excluded by subtracting the post-init
/// clock).
fn modeled_clock(pattern: &CommPattern, topo: &Topology, protocol: Protocol, iters: usize) -> f64 {
    let coll = NeighborAlltoallv::new(pattern, topo).protocol(protocol);
    // Disable the queue-search term: it charges by the actual mailbox depth
    // at match time, which depends on thread arrival order and would make
    // the clock comparison flaky. The postal arrival times themselves merge
    // through max() and are deterministic.
    let mut m = LocalityModel::lassen();
    m.queue_coeff = 0.0;
    let model = Arc::new(m);
    let clocks = World::run_modeled(topo.clone(), model, |ctx| {
        let comm = ctx.comm_world();
        let mut nb = coll.init(ctx, &comm);
        let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
        let mut output = vec![0.0; nb.output_index().len()];
        // synchronize clocks after init so we measure iterations only
        ctx.barrier(&comm);
        let t0 = ctx.clock();
        for _ in 0..iters {
            nb.start(ctx, &input);
            nb.wait(ctx, &mut output);
        }
        ctx.clock() - t0
    });
    clocks.into_iter().fold(0.0, f64::max)
}

#[test]
fn aggregation_beats_standard_on_dense_pattern_clock() {
    // Many small inter-region messages per rank is the regime aggregation
    // targets; the *executed* virtual time must agree with the analytic
    // claim there.
    let topo = Topology::block_nodes(32, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let t_std = modeled_clock(&pattern, &topo, Protocol::StandardHypre, 10);
    let t_ful = modeled_clock(&pattern, &topo, Protocol::FullNeighbor, 10);
    assert!(
        t_ful < t_std,
        "executed virtual time: full {t_ful:.2e} should beat standard {t_std:.2e}"
    );
}

#[test]
fn dedup_clock_no_worse_than_partial() {
    let pattern = CommPattern::example_2_1();
    let topo = Topology::block_nodes(8, 4);
    let t_partial = modeled_clock(&pattern, &topo, Protocol::PartialNeighbor, 10);
    let t_full = modeled_clock(&pattern, &topo, Protocol::FullNeighbor, 10);
    assert!(
        t_full <= t_partial * 1.05,
        "full {t_full} vs partial {t_partial}"
    );
}

#[test]
fn clocks_scale_linearly_with_iterations() {
    let pattern = CommPattern::example_2_1();
    let topo = Topology::block_nodes(8, 4);
    let t1 = modeled_clock(&pattern, &topo, Protocol::StandardHypre, 5);
    let t2 = modeled_clock(&pattern, &topo, Protocol::StandardHypre, 10);
    let ratio = t2 / t1;
    assert!((1.6..=2.4).contains(&ratio), "expected ~2x, got {ratio}");
}

/// Executed virtual time of an aggregated plan under the plain vs the
/// partitioned executor.
fn agg_clock(pattern: &CommPattern, topo: &Topology, partitioned: bool) -> f64 {
    let backend = if partitioned {
        Backend::Partitioned(Protocol::PartialNeighbor)
    } else {
        Backend::Protocol(Protocol::PartialNeighbor)
    };
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    let mut m = LocalityModel::lassen();
    m.queue_coeff = 0.0;
    let model = Arc::new(m);
    let clocks = World::run_modeled(topo.clone(), model, |ctx| {
        let comm = ctx.comm_world();
        let input = vec![1.0f64; pattern.src_indices(ctx.rank()).len()];
        let mut output = vec![0.0; pattern.dst_indices(ctx.rank()).len()];
        ctx.barrier(&comm);
        let t0 = ctx.clock();
        let mut nb = coll.init(ctx, &comm);
        for _ in 0..3 {
            nb.start_wait(ctx, &input, &mut output);
        }
        ctx.clock() - t0
    });
    clocks.into_iter().fold(0.0, f64::max)
}

#[test]
fn partitioned_near_parity_on_large_staggered_messages() {
    // §5's combination targets LARGE messages: early staging contributions
    // are injected while the leader still waits for the big one. In the
    // postal model the end-to-end win is capped by the sender-serialized
    // injection plus per-partition rendezvous handshakes, so we assert
    // near-parity here; the decisive benefit — time to *first* data — is
    // asserted in `partitioned_first_data_arrives_much_earlier`.
    let topo = Topology::block_nodes(8, 4);
    let idx = |base: usize, n: usize| (base..base + n).collect::<Vec<usize>>();
    let pattern = CommPattern::new(
        8,
        vec![
            vec![(4, idx(0, 4_000))],
            vec![(5, idx(100_000, 8_000))],
            vec![(6, idx(200_000, 12_000))],
            vec![(7, idx(300_000, 40_000))], // the big, late contribution
            vec![],
            vec![],
            vec![],
            vec![],
        ],
    );
    let plain = agg_clock(&pattern, &topo, false);
    let parted = agg_clock(&pattern, &topo, true);
    assert!(
        parted <= plain * 1.10,
        "partitioned {parted:.3e} should be within 10% of plain {plain:.3e}"
    );
}

#[test]
fn partitioned_first_data_arrives_much_earlier() {
    // The Finepoints motivation: a consumer of the message can start on the
    // first partition long before the full buffer would have landed.
    use mpisim::persistent::shared_buf;
    let topo = Topology::block_nodes(2, 1);
    let model = Arc::new({
        let mut m = LocalityModel::lassen();
        m.queue_coeff = 0.0;
        m
    });
    const N: usize = 200_000;
    const PARTS: usize = 8;
    let out = World::run_modeled(topo, model, |ctx| {
        let comm = ctx.comm_world();
        if ctx.rank() == 0 {
            // plain send of the whole buffer
            let data = vec![1.0f64; N];
            ctx.send(&comm, 1, 0, &data);
            // partitioned send of the same buffer
            let buf = shared_buf(vec![1.0f64; N]);
            let mut req = ctx.psend_init(&comm, 1, 1, buf, PARTS);
            req.start();
            for p in 0..PARTS {
                req.pready(ctx, p);
            }
            req.wait();
            (0.0, 0.0)
        } else {
            let t0 = ctx.clock();
            let _: Vec<f64> = ctx.recv(&comm, 0, 0);
            let t_full = ctx.clock() - t0;
            let buf = shared_buf(vec![0.0f64; N]);
            let mut req = ctx.precv_init(&comm, 0, 1, buf, PARTS);
            req.start();
            let t1 = ctx.clock();
            while !req.parrived(ctx, 0) {
                std::thread::yield_now();
            }
            let t_first = ctx.clock() - t1;
            req.wait(ctx);
            (t_full, t_first)
        }
    });
    let (t_full, t_first) = out[1];
    assert!(
        t_first < t_full / 4.0,
        "first partition should land much earlier: first {t_first:.3e} vs full {t_full:.3e}"
    );
}

#[test]
fn partitioned_loses_on_tiny_messages() {
    // ... and conversely: with α-dominated single-value contributions the
    // extra per-partition message overhead makes partitioning a loss —
    // which is why the paper scopes it to large messages.
    let topo = Topology::block_nodes(16, 4);
    let pattern = CommPattern::all_to_all_regions(&topo);
    let plain = agg_clock(&pattern, &topo, false);
    let parted = agg_clock(&pattern, &topo, true);
    assert!(
        parted >= plain * 0.95,
        "tiny-message partitioning unexpectedly won: {parted:.3e} vs {plain:.3e}"
    );
}

#[test]
fn postal_model_collective_costs_logarithmic() {
    // sanity of the modeled collectives themselves: a barrier's virtual
    // time grows like log P, not P
    let time_for = |n: usize| {
        let topo = Topology::block_nodes(n, 4);
        let model = Arc::new(PostalModel::new(1e-6, 0.0));
        let clocks = World::run_modeled(topo, model, |ctx| {
            let comm = ctx.comm_world();
            ctx.barrier(&comm);
            ctx.clock()
        });
        clocks.into_iter().fold(0.0, f64::max)
    };
    let t8 = time_for(8);
    let t64 = time_for(64);
    // dissemination barrier: ⌈log2 P⌉ rounds ⇒ 3α vs 6α
    assert!(t64 < t8 * 3.0, "barrier not logarithmic: {t8} -> {t64}");
}
